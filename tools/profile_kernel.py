#!/usr/bin/env python3
"""Simulation-kernel throughput profiler.

Measures **branches per second** of :func:`repro.sim.driver.simulate` on
canonical (benchmark × system) cells — the repo's performance trajectory
for the innermost loop every experiment inherits. Emits a
machine-readable ``BENCH_kernel.json`` and can gate CI against a
checked-in floor.

Methodology (see docs/PERFORMANCE.md):

* throughput = resolved branches / wall-clock of one ``simulate`` call,
  after a separate untimed warm-up run has compiled the CFG transition
  tables and settled allocator state;
* per-predictor ``PredictorStats`` accounting is off during timed runs
  (``collect_predictor_stats=False``), matching how sweeps run;
* every cell is additionally run through the batched structure-of-arrays
  backend (``SimulationConfig.backend = "batched"``) and reported as a
  third column with its speedup over the scalar backend. The timed
  batched run measures steady-state replay: an untimed batched run at
  the same branch count first populates the memoized architectural
  trace (the regime a sweep lives in, where one program is simulated
  across many systems). Bit-identity of the two backends is asserted on
  every run;
* ``--compare-reference`` times the frozen pre-optimization kernel
  (``tests/reference_kernel.py``) on the same cells in the same process
  and reports the speedup ratio. Ratios are much more stable across
  machines than absolute branches/sec, so the CI floor is expressed in
  ratios;
* ``--check-floor FILE`` fails (exit 1) when a cell's speedup — over the
  reference kernel or of the batched backend over scalar — falls more
  than 25% below its floor value.

Usage::

    PYTHONPATH=src python tools/profile_kernel.py                # full panel
    PYTHONPATH=src python tools/profile_kernel.py --quick        # CI smoke
    PYTHONPATH=src python tools/profile_kernel.py --quick \\
        --compare-reference --check-floor benchmarks/BENCH_kernel_floor.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests"))  # frozen reference kernel

from repro.sim.driver import SimulationConfig, simulate  # noqa: E402
from repro.sim.specs import ProgramSpec, SystemSpec  # noqa: E402

#: The canonical cells. "headline" is the acceptance cell: the §1
#: comparison pair on gcc. The remaining cells cover a loop-dominated FP
#: benchmark and the random-heavy server benchmark so a regression that
#: only hits call-heavy or flush-heavy paths cannot hide.
CELLS: list[dict] = [
    {
        "id": "gcc/hybrid-8+8",
        "benchmark": "gcc",
        "system": SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
        "quick": True,
        "headline": True,
    },
    {
        "id": "gcc/2bc-gskew-16",
        "benchmark": "gcc",
        "system": SystemSpec.single("2bc-gskew", 16),
        "quick": True,
        "headline": True,
    },
    {
        "id": "flash/2bc-gskew-16",
        "benchmark": "flash",
        "system": SystemSpec.single("2bc-gskew", 16),
        "quick": True,
        "headline": True,
    },
    {
        "id": "facerec/hybrid-8+8",
        "benchmark": "facerec",
        "system": SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
        "quick": False,
        "headline": False,
    },
    {
        "id": "tpcc/hybrid-8+8",
        "benchmark": "tpcc",
        "system": SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
        "quick": False,
        "headline": False,
    },
]


def _time_run(simulate_fn, program, system, config) -> tuple[float, object]:
    start = time.perf_counter()
    stats = simulate_fn(program, system, config)
    return time.perf_counter() - start, stats


def measure_cell(
    cell: dict,
    n_branches: int,
    warmup_branches: int,
    compare_reference: bool,
) -> dict:
    """Measure one cell; returns the result row for BENCH_kernel.json."""
    config = SimulationConfig(
        n_branches=n_branches,
        warmup=warmup_branches,
        collect_predictor_stats=False,
    )
    program = ProgramSpec(benchmark=cell["benchmark"]).build()

    # Untimed warm-up: compiles CFG segments, touches every table once.
    warm_cfg = SimulationConfig(
        n_branches=max(2_000, n_branches // 10),
        warmup=200,
        collect_predictor_stats=False,
    )
    simulate(program, cell["system"].build(), warm_cfg)

    elapsed, stats = _time_run(simulate, program, cell["system"].build(), config)
    row = {
        "cell": cell["id"],
        "benchmark": cell["benchmark"],
        "headline": cell["headline"],
        "branches": n_branches,
        "seconds": round(elapsed, 4),
        "branches_per_sec": round(n_branches / elapsed, 1),
        "mispredicts": stats.mispredicts,
    }

    from repro.sim import batched as _batched

    if _batched.np is not None:
        batched_cfg = replace(config, backend="batched")
        # Untimed batched run at the full branch count: populates the
        # memoized architectural trace and the flat CFG tables, so the
        # timed run below measures steady-state replay (the sweep
        # regime: one program, many systems).
        simulate(program, cell["system"].build(), batched_cfg)
        b_elapsed, b_stats = _time_run(
            simulate, program, cell["system"].build(), batched_cfg
        )
        if (b_stats.mispredicts, b_stats.committed_uops, b_stats.fetched_uops) != (
            stats.mispredicts, stats.committed_uops, stats.fetched_uops
        ):
            raise AssertionError(
                f"{cell['id']}: batched and scalar backends disagree — run "
                "the differential tests (tests/sim/test_batched_backend.py)"
            )
        row["batched_branches_per_sec"] = round(n_branches / b_elapsed, 1)
        row["speedup_batched_vs_scalar"] = round(elapsed / b_elapsed, 3)

    if compare_reference:
        from reference_kernel import reference_simulate

        system = cell["system"].build()
        # The frozen kernel predates the stats switch; disable by hand so
        # both kernels do identical accounting work.
        system.set_stats_enabled(False)
        ref_elapsed, ref_stats = _time_run(reference_simulate, program, system, config)
        if (ref_stats.mispredicts, ref_stats.committed_uops, ref_stats.fetched_uops) != (
            stats.mispredicts, stats.committed_uops, stats.fetched_uops
        ):
            raise AssertionError(
                f"{cell['id']}: kernel and reference disagree — run the "
                "differential tests (tests/sim/test_differential_kernel.py)"
            )
        row["reference_branches_per_sec"] = round(n_branches / ref_elapsed, 1)
        row["speedup_vs_reference"] = round(ref_elapsed / elapsed, 3)
    return row


def check_floor(rows: list[dict], floor_path: Path) -> list[str]:
    """Return failure messages for cells regressing >25% below the floor."""
    floors = json.loads(floor_path.read_text())
    tolerance = floors.get("tolerance", 0.75)
    failures = []
    for row in rows:
        floor = floors.get("min_speedup_vs_reference", {}).get(row["cell"])
        if floor is not None:
            measured = row.get("speedup_vs_reference")
            if measured is None:
                failures.append(
                    f"{row['cell']}: floor set but --compare-reference not run"
                )
            elif measured < floor * tolerance:
                failures.append(
                    f"{row['cell']}: speedup {measured:.2f}x fell below "
                    f"{floor * tolerance:.2f}x (floor {floor:.2f}x, "
                    f"tolerance {tolerance:.0%})"
                )
        floor = floors.get("min_speedup_batched_vs_scalar", {}).get(row["cell"])
        if floor is not None:
            measured = row.get("speedup_batched_vs_scalar")
            if measured is None:
                # numpy absent: the batched column legitimately cannot
                # run, so the batched floor is waived rather than failed.
                from repro.sim import batched as _batched

                if _batched.np is not None:
                    failures.append(
                        f"{row['cell']}: batched floor set but batched "
                        "column missing"
                    )
            elif measured < floor * tolerance:
                failures.append(
                    f"{row['cell']}: batched speedup {measured:.2f}x fell "
                    f"below {floor * tolerance:.2f}x (floor {floor:.2f}x, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="headline cells only, at a CI-sized branch count",
    )
    parser.add_argument(
        "--branches", type=int, default=None,
        help="branches per timed run (default: 50000, quick: 20000)",
    )
    parser.add_argument(
        "--compare-reference", action="store_true",
        help="also time the frozen pre-optimization kernel and report speedups",
    )
    parser.add_argument(
        "--check-floor", type=Path, default=None,
        help="floor JSON; exit 1 on >25%% regression vs min_speedup_vs_reference",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "benchmarks" / "BENCH_kernel.json",
        help="output path for the machine-readable result (default: %(default)s)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="wall-clock budget for the whole profiling run; exit 1 when "
             "exceeded (CI uses this so the perf-smoke job cannot "
             "silently balloon as cells are added)",
    )
    args = parser.parse_args(argv)
    run_start = time.perf_counter()

    n_branches = args.branches or (20_000 if args.quick else 50_000)
    warmup_branches = max(500, n_branches // 10)
    compare = args.compare_reference or args.check_floor is not None

    cells = [c for c in CELLS if c["quick"]] if args.quick else CELLS
    rows = []
    for cell in cells:
        row = measure_cell(cell, n_branches, warmup_branches, compare)
        rows.append(row)
        line = f"{row['cell']:24s} {row['branches_per_sec']:>12,.0f} branches/s"
        if "speedup_batched_vs_scalar" in row:
            line += (
                f"   (batched {row['batched_branches_per_sec']:>10,.0f} b/s,"
                f" {row['speedup_batched_vs_scalar']:.2f}x)"
            )
        if "speedup_vs_reference" in row:
            line += (
                f"   (reference {row['reference_branches_per_sec']:>10,.0f} b/s,"
                f" {row['speedup_vs_reference']:.2f}x)"
            )
        print(line)

    wall_seconds = time.perf_counter() - run_start
    payload = {
        "schema": "bench-kernel/1",
        "branches_per_run": n_branches,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "wall_seconds": round(wall_seconds, 2),
        "cells": rows,
    }
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    status = 0
    if args.check_floor is not None:
        failures = check_floor(rows, args.check_floor)
        if failures:
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"floor check passed ({args.check_floor})")
    if args.max_seconds is not None:
        wall_seconds = time.perf_counter() - run_start
        if wall_seconds > args.max_seconds:
            print(
                f"WALL-CLOCK BUDGET EXCEEDED: profiling took "
                f"{wall_seconds:.1f}s, budget is {args.max_seconds:.1f}s",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"wall-clock budget ok ({wall_seconds:.1f}s of "
                f"{args.max_seconds:.1f}s)"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
