#!/usr/bin/env python3
"""Standalone entry point for the repro-lint invariant checker.

Equivalent to ``python -m repro lint``; exists so the linter can run
before/without installing the package (pre-commit hooks, bare CI steps):

    python tools/run_lint.py [--check] [--format json] [--out lint.json]

See ``docs/LINTING.md`` for the rule catalog and workflow.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402 - path bootstrap first

if __name__ == "__main__":
    sys.exit(main())
