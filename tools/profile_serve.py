#!/usr/bin/env python3
"""Service-layer load profiler: jobs/sec through the sweep daemon.

Where ``tools/profile_sweep.py`` tracks the execution engine in-process,
this tool tracks the **service surface** around it — the asyncio HTTP
front door, the job queue, event streaming and the cache-backed dedup of
concurrent identical work (see ``docs/SERVE.md``). It boots a real
daemon (in a thread, ephemeral port, fresh cache), drives it with the
real :class:`~repro.serve.client.SweepClient`, and emits a
machine-readable ``BENCH_serve.json``.

Scenarios (canonical panel: 4 systems × 2 benchmarks, 1 000-branch
cells — small enough that the service layer, not the kernel, dominates):

* ``cold/1-client`` — one job against an empty cache: every cell
  simulates. The submitting client streams the job's events, so the
  per-cell latencies (p50/p95) include the full HTTP + queue + engine
  round trip. The job's results are verified bit-identical to a local
  :func:`~repro.sim.sweep.run_sweep` before timing is trusted.
* ``warm-cache/1-client`` — the same job resubmitted: every cell is
  served from the cache. The warm/cold speedup is the floor's headline
  ratio (ratios travel across machines; absolute jobs/sec does not).
* ``dup-heavy/8-client`` — eight clients in eight threads submit the
  *identical* job concurrently against a fresh panel. The daemon's
  single runner serializes them through one engine + cache, so exactly
  one job simulates and seven are cache-served: the
  ``cache_served_fraction`` is deterministically 7/8 = 0.875, and the
  floor requires ≥ 0.8 with **no** tolerance (it measures correctness
  of the dedup path, not machine speed).

Usage::

    PYTHONPATH=src python tools/profile_serve.py                  # measure
    PYTHONPATH=src python tools/profile_serve.py \\
        --check-floor benchmarks/BENCH_serve_floor.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeConfig, SweepClient, start_daemon  # noqa: E402
from repro.sim import SimulationConfig  # noqa: E402
from repro.sim.cache import encode_result  # noqa: E402
from repro.sim.specs import SystemSpec  # noqa: E402
from repro.sim.sweep import run_sweep  # noqa: E402

#: The canonical service panel: small grid, service-bound cells.
SYSTEMS = {
    "gshare-8": {"kind": "single", "prophet": {"kind": "gshare", "budget_kb": 8}},
    "gskew-8": {"kind": "single", "prophet": {"kind": "2bc-gskew", "budget_kb": 8}},
    "bimodal": {"kind": "single", "prophet": "bimodal"},
    "hybrid-8+8": {"kind": "hybrid", "prophet": "2bc-gskew",
                   "critic": "tagged-gshare", "future_bits": 8},
}
BENCHMARKS = "swim,facerec"
BENCH_NAMES = ("swim", "facerec")


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (robust for the small samples here)."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _submit_and_stream(
    client: SweepClient, branches: int, priority: int = 0
) -> tuple[str, float, list[float]]:
    """Submit the panel job and stream it; returns (job, seconds, cell ms).

    Per-cell latency is the gap between consecutive streamed events as
    seen by the client — the full submit→simulate→stream round trip,
    which is the latency a human watching ``repro submit --progress``
    experiences.
    """
    start = time.perf_counter()
    job = client.submit(
        SYSTEMS, BENCHMARKS, branches=branches, warmup=branches // 5,
        priority=priority,
    )
    latencies: list[float] = []
    last = time.perf_counter()
    for event in client.events(job):
        now = time.perf_counter()
        if event.get("event") == "cell":
            latencies.append((now - last) * 1e3)
        last = now
    elapsed = time.perf_counter() - start
    return job, elapsed, latencies


def _verify_bit_identity(client: SweepClient, job: str, branches: int) -> None:
    """The HTTP-fetched sweep must equal a local run_sweep, bit for bit."""
    specs = {label: SystemSpec.from_config(c) for label, c in SYSTEMS.items()}
    config = SimulationConfig(n_branches=branches, warmup=branches // 5)
    local = run_sweep(specs, {name: name for name in BENCH_NAMES}, config=config)
    remote = client.sweep_result(job)
    for label in specs:
        for bench in BENCH_NAMES:
            if encode_result(remote.get(label, bench)) != encode_result(
                local.get(label, bench)
            ):
                raise AssertionError(
                    f"{label} × {bench}: HTTP result differs from local "
                    "run_sweep — run tests/serve/test_service_e2e.py"
                )


def measure_scenarios(branches: int, clients: int) -> list[dict]:
    """Run all three scenarios against one freshly booted daemon."""
    rows: list[dict] = []

    def row(scenario: str, jobs: int, seconds: float,
            latencies: list[float], stats_before: dict, stats_after: dict) -> dict:
        executed = stats_after["cells_executed"] - stats_before["cells_executed"]
        cached = stats_after["cells_from_cache"] - stats_before["cells_from_cache"]
        total = executed + cached
        entry = {
            "scenario": scenario,
            "jobs": jobs,
            "cells": total,
            "seconds": round(seconds, 4),
            "jobs_per_sec": round(jobs / seconds, 3),
            "cells_per_sec": round(total / seconds, 2),
            "cache_served_fraction": round(cached / total, 4) if total else 0.0,
        }
        if latencies:
            entry["cell_latency_p50_ms"] = round(_percentile(latencies, 0.50), 3)
            entry["cell_latency_p95_ms"] = round(_percentile(latencies, 0.95), 3)
        return entry

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        handle = start_daemon(
            ServeConfig(port=0, jobs=1, cache_url=cache_dir, max_queue=256)
        )
        try:
            client = SweepClient(handle.url)

            # cold: empty cache, every cell simulates.
            before = client.stats()
            job, elapsed, latencies = _submit_and_stream(client, branches)
            rows.append(row("cold/1-client", 1, elapsed, latencies,
                            before, client.stats()))
            _verify_bit_identity(client, job, branches)

            # warm cache: the identical job again, all cells from disk.
            before = client.stats()
            _, elapsed, latencies = _submit_and_stream(client, branches)
            rows.append(row("warm-cache/1-client", 1, elapsed, latencies,
                            before, client.stats()))

            # dup-heavy: N clients race the identical *fresh* panel
            # (branches + 1 so the cold/warm cache entries don't apply);
            # one job simulates, the rest are served from its write-back.
            dup_branches = branches + 1
            before = client.stats()
            errors: list[BaseException] = []
            all_latencies: list[float] = []
            lock = threading.Lock()

            def one_client() -> None:
                try:
                    own = SweepClient(handle.url)
                    _, _, lat = _submit_and_stream(own, dup_branches)
                    with lock:
                        all_latencies.extend(lat)
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [threading.Thread(target=one_client) for _ in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            rows.append(row(f"dup-heavy/{clients}-client", clients, elapsed,
                            all_latencies, before, client.stats()))
        finally:
            handle.stop()
    return rows


def check_floor(rows: list[dict], floor_path: Path) -> list[str]:
    """Failure messages against the committed floor.

    ``min_cache_served_fraction`` floors are exact (they gate the dedup
    path's correctness, which does not vary with machine speed);
    ``min_warm_speedup_vs_cold`` is a ratio floor with the usual
    tolerance band.
    """
    floors = json.loads(floor_path.read_text())
    tolerance = floors.get("tolerance", 0.75)
    by_scenario = {entry["scenario"]: entry for entry in rows}
    failures: list[str] = []

    for scenario, floor in floors.get("min_cache_served_fraction", {}).items():
        entry = by_scenario.get(scenario)
        if entry is None:
            failures.append(f"{scenario}: floor set but scenario not measured")
            continue
        measured = entry["cache_served_fraction"]
        if measured < floor:
            failures.append(
                f"{scenario}: cache served {measured:.1%} of cells, "
                f"floor requires {floor:.1%} (no tolerance — this gates "
                "the dedup path, not machine speed)"
            )

    speedup_floor = floors.get("min_warm_speedup_vs_cold")
    if speedup_floor is not None:
        cold = by_scenario.get("cold/1-client")
        warm = by_scenario.get("warm-cache/1-client")
        if cold is None or warm is None:
            failures.append("warm-speedup floor set but scenarios not measured")
        else:
            measured = cold["seconds"] / warm["seconds"]
            threshold = speedup_floor * tolerance
            if measured < threshold:
                failures.append(
                    f"warm-cache speedup {measured:.2f}x fell below "
                    f"{threshold:.2f}x (floor {speedup_floor:.2f}x, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--branches", type=int, default=1_000,
        help="branches per cell (default 1000: short cells keep the "
             "service layer, not the kernel, on the critical path)",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent clients in the dup-heavy scenario (default 8)",
    )
    parser.add_argument(
        "--check-floor", type=Path, default=None,
        help="floor JSON; exit 1 when a scenario falls below it",
    )
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_serve.json"),
        help="output path for the machine-readable result (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    rows = measure_scenarios(args.branches, args.clients)
    for entry in rows:
        line = (
            f"{entry['scenario']:22s} {entry['jobs_per_sec']:>7.2f} jobs/s"
            f"  cache {entry['cache_served_fraction']:>6.1%}"
        )
        if "cell_latency_p50_ms" in entry:
            line += (
                f"  cell p50 {entry['cell_latency_p50_ms']:>7.1f}ms"
                f" p95 {entry['cell_latency_p95_ms']:>7.1f}ms"
            )
        print(line)

    payload = {
        "schema": "bench-serve/1",
        "branches_per_cell": args.branches,
        "clients": args.clients,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": rows,
    }
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if args.check_floor is not None:
        failures = check_floor(rows, args.check_floor)
        if failures:
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"floor check passed ({args.check_floor})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
