#!/usr/bin/env python3
"""Markdown link checker for README and docs/ (no third-party deps).

Scans markdown files for inline links and images (``[text](target)``),
skips external schemes (http/https/mailto) and pure anchors, and
verifies every relative target resolves to an existing file or
directory. Used by the CI docs job and by ``tests/test_docs.py``.

    python tools/check_markdown_links.py README.md docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: [label](target) — code spans are stripped
#: beforehand, so pseudo-links in code samples don't trip the checker.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix.lower() == ".md":
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {target}")
    return files


def broken_links(files: list[Path]) -> list[str]:
    problems: list[str] = []
    for md_file in files:
        in_fence = False
        for line_number, line in enumerate(
            md_file.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(_CODE_SPAN.sub("", line)):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not (md_file.parent / relative).exists():
                    problems.append(
                        f"{md_file}:{line_number}: broken link -> {target}"
                    )
    return problems


def main(argv: list[str]) -> int:
    targets = argv or ["README.md", "docs"]
    files = iter_markdown_files(targets)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    problems = broken_links(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'FAILED' if problems else 'all links resolve'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
