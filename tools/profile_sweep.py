#!/usr/bin/env python3
"""Sweep-throughput profiler: cells/sec through the execution engine.

Where ``tools/profile_kernel.py`` tracks the speed of one ``simulate()``
call, this tool tracks the speed of the **sweep execution layer** — the
persistent worker pool, per-worker memoized program builds, dynamic
scheduling and streaming cache write-back that every §7-style grid runs
through. It emits a machine-readable ``BENCH_sweep.json`` and can gate
CI against a checked-in floor.

Canonical grids (12 systems × 4 build-heavy benchmarks, 1 000-branch
cells). Short cells are deliberate: they are the regime where the
execution layer — not the simulation kernel — is the bottleneck, which
makes this grid the most sensitive instrument for layer regressions.
The kernel's own speed on long cells is tracked separately by
``profile_kernel.py``; ``--branches`` rescales the cells when the
interaction matters.

* ``cold-start/12x4`` — a fresh engine's first grid: includes worker
  spawn and every program build. No result cache.
* ``steady/12x4`` — the same grid re-run on the now-warm engine (pool
  up, per-worker build caches hot). The result cache stays **off**, so
  every cell is fully re-simulated: this is the steady-state throughput
  of a long sweep, and the headline floor cell. The same
  warm-up-then-measure protocol as the kernel bench.
* ``warm-cache/12x4`` — the grid served entirely from a pre-filled
  :class:`~repro.sim.cache.ResultCache` (the resume-after-kill path).
* ``dup-heavy/4x12`` — 4 distinct cells under 12 labels each: the
  duplicate-coalescing path (cache-codec clone vs the old deepcopy).
* ``fused/8x1`` — every batched-supported system replayed over one gcc
  build through :func:`repro.sim.batched.fused_replay` (shared trace
  columns and per-program precompute) against the same panel through
  the scalar loop, at longer cells where fusion matters; result
  identity asserted per cell.

``--compare-reference`` runs the frozen pre-overhaul engine
(``tests/reference_engine.py``) on identical grids with the same
protocol and reports the speedup ratio; ratios are far more stable
across machines than absolute cells/sec, so the CI floor
(``--check-floor``, ``benchmarks/BENCH_sweep_floor.json``) is expressed
in ratios and fails on a >25% regression.

Usage::

    PYTHONPATH=src python tools/profile_sweep.py                  # measure
    PYTHONPATH=src python tools/profile_sweep.py \\
        --compare-reference --check-floor benchmarks/BENCH_sweep_floor.json
"""

from __future__ import annotations

import argparse
import copy
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests"))  # frozen reference engine

from repro.sim.cache import ResultCache, clone_result  # noqa: E402
from repro.sim.driver import SimulationConfig  # noqa: E402
from repro.sim.execution import (  # noqa: E402
    ProcessPoolExecutor,
    SweepEngine,
    run_cell,
)
from repro.sim.specs import (  # noqa: E402
    PredictorSpec,
    ProgramSpec,
    SweepCell,
    SystemSpec,
)

#: Build-heavy benchmark panel: large CFGs across integer, web-server
#: and Windows-application behaviour mixes, so the build-vs-simulate
#: ratio matches the paper's heavyweight traces rather than the small
#: FP loops.
BENCHMARKS = ("gcc", "webmark", "msvc7", "specjbb")

#: Twelve systems spanning the registry: Table-3 singles at two budgets,
#: default-geometry kinds, and three prophet/critic hybrids.
SYSTEMS: tuple[SystemSpec, ...] = (
    SystemSpec.single("gshare", 8),
    SystemSpec.single("gshare", 4),
    SystemSpec.single("2bc-gskew", 8),
    SystemSpec.single("2bc-gskew", 16),
    SystemSpec.single("perceptron", 4),
    SystemSpec.single("tage", 8),
    SystemSpec(kind="single", prophet=PredictorSpec("bimodal")),
    SystemSpec(kind="single", prophet=PredictorSpec("yags")),
    SystemSpec(kind="single", prophet=PredictorSpec("local")),
    SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
    SystemSpec.hybrid("gshare", 8, "tagged-gshare", 8, future_bits=4),
    SystemSpec.hybrid("2bc-gskew", 8, "gshare", 2, future_bits=1),
)


def grid_cells(branches: int) -> list[SweepCell]:
    """The canonical 12-system × 4-benchmark accuracy grid."""
    config = SimulationConfig(n_branches=branches, warmup=branches // 5)
    return [
        SweepCell(f"sys{i}", bench, system, ProgramSpec(benchmark=bench), config)
        for bench in BENCHMARKS
        for i, system in enumerate(SYSTEMS)
    ]


def duplicate_cells(branches: int) -> list[SweepCell]:
    """4 distinct cells × 12 labels each (the duplicate-coalescing path)."""
    config = SimulationConfig(n_branches=branches, warmup=branches // 5)
    return [
        SweepCell(f"label{i}", bench, SYSTEMS[0], ProgramSpec(benchmark=bench), config)
        for bench in BENCHMARKS
        for i in range(len(SYSTEMS))
    ]


def _timed_run(engine, cells, repeats: int = 1) -> tuple[float, list]:
    """Best-of-``repeats`` wall clock (sub-100ms paths are jitter-bound)."""
    best = None
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = engine.run_cells(cells)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, results


def _reference_engine(jobs: int, cache: ResultCache | None = None):
    from reference_engine import (
        ReferenceProcessPoolExecutor,
        ReferenceSerialExecutor,
        ReferenceSweepEngine,
    )

    executor = (
        ReferenceSerialExecutor() if jobs <= 1 else ReferenceProcessPoolExecutor(jobs)
    )
    return ReferenceSweepEngine(executor=executor, cache=cache)


def _verify_identical(a: list, b: list, what: str) -> None:
    from repro.sim.cache import encode_result

    for x, y in zip(a, b):
        if encode_result(x) != encode_result(y):
            raise AssertionError(
                f"{what}: engine and reference disagree on a cell result — "
                "run the differential tests (tests/sim/test_execution.py)"
            )


def measure_grids(jobs: int, branches: int, compare_reference: bool) -> list[dict]:
    """Measure every canonical grid; returns BENCH_sweep.json rows."""
    rows: list[dict] = []

    def row(grid_id: str, cells, elapsed: float, ref_elapsed: float | None) -> dict:
        entry = {
            "grid": grid_id,
            "cells": len(cells),
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(len(cells) / elapsed, 2),
        }
        if ref_elapsed is not None:
            entry["reference_cells_per_sec"] = round(len(cells) / ref_elapsed, 2)
            entry["speedup_vs_reference"] = round(ref_elapsed / elapsed, 3)
        return entry

    engine = SweepEngine(executor=ProcessPoolExecutor(jobs))
    try:
        # cold start: first-ever grid on a fresh engine (spawn + builds).
        cold_elapsed, cold_results = _timed_run(engine, grid_cells(branches))
        ref_cold = ref_steady = None
        if compare_reference:
            reference = _reference_engine(jobs)
            ref_cold, ref_results = _timed_run(reference, grid_cells(branches))
            _verify_identical(cold_results, ref_results, "cold-start")
        rows.append(row("cold-start/12x4", grid_cells(branches), cold_elapsed, ref_cold))

        # steady state: the same grid on the now-warm engine; the result
        # cache is off, so all cells are fully re-simulated.
        steady_elapsed, steady_results = _timed_run(engine, grid_cells(branches))
        if compare_reference:
            ref_steady, ref_results = _timed_run(reference, grid_cells(branches))
            _verify_identical(steady_results, ref_results, "steady")
        rows.append(row("steady/12x4", grid_cells(branches), steady_elapsed, ref_steady))

        # warm result cache: every cell served from disk.
        with tempfile.TemporaryDirectory(prefix="bench-sweep-") as cache_dir:
            cached_engine = SweepEngine(
                executor=engine.executor, cache=ResultCache(cache_dir)
            )
            cached_engine.run_cells(grid_cells(branches))  # untimed fill
            warm_elapsed, warm_results = _timed_run(
                cached_engine, grid_cells(branches), repeats=3
            )
            ref_warm = None
            if compare_reference:
                with tempfile.TemporaryDirectory(prefix="bench-sweep-ref-") as ref_dir:
                    ref_cached = _reference_engine(jobs, cache=ResultCache(ref_dir))
                    ref_cached.run_cells(grid_cells(branches))
                    ref_warm, ref_results = _timed_run(
                        ref_cached, grid_cells(branches), repeats=3
                    )
                _verify_identical(warm_results, ref_results, "warm-cache")
            rows.append(
                row("warm-cache/12x4", grid_cells(branches), warm_elapsed, ref_warm)
            )

        # duplicate-heavy: 4 unique cells, 44 clones (serial executor —
        # the point is the stamping path, not the pool).
        dup_engine = SweepEngine()
        dup_elapsed, dup_results = _timed_run(
            dup_engine, duplicate_cells(branches), repeats=3
        )
        ref_dup = None
        if compare_reference:
            ref_dup, ref_results = _timed_run(
                _reference_engine(1), duplicate_cells(branches), repeats=3
            )
            _verify_identical(dup_results, ref_results, "dup-heavy")
        rows.append(row("dup-heavy/4x12", duplicate_cells(branches), dup_elapsed, ref_dup))
    finally:
        engine.close()
    return rows


#: The fused-replay panel: every batched-supported shape from SYSTEMS
#: (the tage / yags / local / plain-critic entries fall back to scalar
#: and would measure the fallback, not the fusion).
FUSED_SYSTEMS: tuple[SystemSpec, ...] = (
    SystemSpec.single("gshare", 8),
    SystemSpec.single("gshare", 4),
    SystemSpec.single("2bc-gskew", 8),
    SystemSpec.single("2bc-gskew", 16),
    SystemSpec.single("perceptron", 4),
    SystemSpec(kind="single", prophet=PredictorSpec("bimodal")),
    SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
    SystemSpec.hybrid("gshare", 8, "tagged-gshare", 8, future_bits=4),
)


def measure_fused(branches: int) -> dict:
    """The fused same-program scenario: K systems down one shared trace.

    Replays every batched-supported system over a single gcc build
    through :func:`repro.sim.batched.fused_replay` (per-program
    precompute — trace columns, flat CFG, pc-derived rows — paid once
    for the whole panel) and compares against the same panel run
    cell-by-cell through the scalar loop. Result identity is asserted
    per cell; longer cells than the grid scenarios are used because
    fusion amortizes per-program cost that short cells under-weight.
    """
    from repro.sim.batched import FusedReplayContext, fused_replay, np as _np
    from repro.sim.driver import simulate

    if _np is None:  # no numpy: the fused path cannot run at all
        return {"grid": "fused/8x1", "skipped": "numpy unavailable"}
    n = max(4 * branches, 4_000)
    config = SimulationConfig(
        n_branches=n, warmup=n // 5, collect_predictor_stats=False
    )
    program = ProgramSpec(benchmark="gcc").build()
    shared = FusedReplayContext()
    # Untimed warm-up run: builds the architectural trace and the shared
    # per-program columns (steady-state sweep regime, as in the kernel
    # bench), plus CFG compilation for the scalar side.
    fused_replay(program, [(s.build(), config) for s in FUSED_SYSTEMS[:1]], shared)
    simulate(program, FUSED_SYSTEMS[0].build(), config)

    start = time.perf_counter()
    fused_results = fused_replay(
        program, [(s.build(), config) for s in FUSED_SYSTEMS], shared
    )
    fused_elapsed = time.perf_counter() - start

    scalar_config = SimulationConfig(
        n_branches=n, warmup=n // 5,
        collect_predictor_stats=False, backend="scalar",
    )
    start = time.perf_counter()
    scalar_results = [
        simulate(program, s.build(), scalar_config) for s in FUSED_SYSTEMS
    ]
    scalar_elapsed = time.perf_counter() - start

    for fused_stats, scalar_stats in zip(fused_results, scalar_results):
        if fused_stats is None or (
            fused_stats.mispredicts,
            fused_stats.committed_uops,
            fused_stats.fetched_uops,
        ) != (
            scalar_stats.mispredicts,
            scalar_stats.committed_uops,
            scalar_stats.fetched_uops,
        ):
            raise AssertionError(
                "fused replay and scalar loop disagree — run the "
                "differential tests (tests/sim/test_differential_kernel.py)"
            )
    return {
        "grid": "fused/8x1",
        "cells": len(FUSED_SYSTEMS),
        "branches_per_cell": n,
        "seconds": round(fused_elapsed, 4),
        "cells_per_sec": round(len(FUSED_SYSTEMS) / fused_elapsed, 2),
        "scalar_cells_per_sec": round(len(FUSED_SYSTEMS) / scalar_elapsed, 2),
        "speedup_fused_vs_scalar": round(scalar_elapsed / fused_elapsed, 3),
    }


def measure_duplicate_stamp(branches: int, iterations: int = 2_000) -> dict:
    """Micro-benchmark the duplicate-stamping path: codec clone vs deepcopy."""
    stats = run_cell(grid_cells(branches)[0])
    start = time.perf_counter()
    for _ in range(iterations):
        clone_result(stats)
    clone_us = (time.perf_counter() - start) / iterations * 1e6
    start = time.perf_counter()
    for _ in range(iterations):
        copy.deepcopy(stats)
    deepcopy_us = (time.perf_counter() - start) / iterations * 1e6
    return {
        "clone_us": round(clone_us, 2),
        "deepcopy_us": round(deepcopy_us, 2),
        "speedup_vs_deepcopy": round(deepcopy_us / clone_us, 2),
    }


def check_floor(rows: list[dict], floor_path: Path) -> list[str]:
    """Return failure messages for grids regressing >25% below the floor."""
    floors = json.loads(floor_path.read_text())
    tolerance = floors.get("tolerance", 0.75)
    failures = []
    for entry in rows:
        floor = floors.get("min_speedup_vs_reference", {}).get(entry["grid"])
        if floor is None:
            continue
        measured = entry.get("speedup_vs_reference")
        if measured is None:
            failures.append(
                f"{entry['grid']}: floor set but --compare-reference not run"
            )
            continue
        threshold = floor * tolerance
        if measured < threshold:
            failures.append(
                f"{entry['grid']}: speedup {measured:.2f}x fell below "
                f"{threshold:.2f}x (floor {floor:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker processes for the pooled grids (default 4, the floor's "
             "canonical setting)",
    )
    parser.add_argument(
        "--branches", type=int, default=1_000,
        help="branches per cell (default 1000: short cells expose the "
             "execution layer, long cells the kernel)",
    )
    parser.add_argument(
        "--compare-reference", action="store_true",
        help="also run the frozen pre-overhaul engine and report speedups",
    )
    parser.add_argument(
        "--check-floor", type=Path, default=None,
        help="floor JSON; exit 1 on >25%% regression vs min_speedup_vs_reference",
    )
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_sweep.json"),
        help="output path for the machine-readable result (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    compare = args.compare_reference or args.check_floor is not None

    rows = measure_grids(args.jobs, args.branches, compare)
    for entry in rows:
        line = f"{entry['grid']:20s} {entry['cells_per_sec']:>8.2f} cells/s"
        if "speedup_vs_reference" in entry:
            line += (
                f"   (reference {entry['reference_cells_per_sec']:>8.2f} cells/s,"
                f" {entry['speedup_vs_reference']:.2f}x)"
            )
        print(line)
    fused = measure_fused(args.branches)
    if "speedup_fused_vs_scalar" in fused:
        print(
            f"{fused['grid']:20s} {fused['cells_per_sec']:>8.2f} cells/s"
            f"   (scalar {fused['scalar_cells_per_sec']:>8.2f} cells/s,"
            f" {fused['speedup_fused_vs_scalar']:.2f}x)"
        )
    stamp = measure_duplicate_stamp(args.branches)
    print(
        f"duplicate stamp: clone {stamp['clone_us']:.1f}µs vs deepcopy "
        f"{stamp['deepcopy_us']:.1f}µs ({stamp['speedup_vs_deepcopy']:.1f}x)"
    )

    payload = {
        "schema": "bench-sweep/1",
        "jobs": args.jobs,
        "branches_per_cell": args.branches,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grids": rows,
        "fused": fused,
        "duplicate_stamp": stamp,
    }
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if args.check_floor is not None:
        failures = check_floor(rows, args.check_floor)
        if failures:
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"floor check passed ({args.check_floor})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
