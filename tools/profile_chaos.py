#!/usr/bin/env python3
"""Chaos profiler: what fault recovery *costs*, gated by a floor.

The chaos harness (``repro chaos``, :func:`repro.faults.chaos.run_chaos_sweep`)
proves recovery is **lossless**; this tool measures that it is also
**cheap**. Each scenario runs one sweep grid twice — fault-free serial
reference, then under a canonical fault plan from ``examples/faults/``
— and records the recovery-overhead ratio (chaos wall-clock over
reference wall-clock). Ratios travel across machines; absolute seconds
do not, so the floor (``benchmarks/BENCH_chaos_floor.json``) bounds the
ratios and gates correctness (``identical``/``quarantined``) with *no*
tolerance.

Scenarios:

* ``crash/worker-kill`` — ``worker-crash.json``: two injected worker
  crashes mid-sweep; the pool respawns, the crashed cells re-run.
* ``corrupt/cache-flip`` — ``corrupt-cache.json``: transient errors,
  dropped puts and flipped get-bytes against the result cache; checksum
  verification evicts, the engine recomputes.
* ``dead-hub/blackhole`` — ``dead-hub.json``: every cache op fails for
  the first 8 then the peer recovers — the pattern a dead hub daemon
  shows a tiered cache, degraded to plain misses.

Usage::

    PYTHONPATH=src python tools/profile_chaos.py                  # measure
    PYTHONPATH=src python tools/profile_chaos.py \\
        --check-floor benchmarks/BENCH_chaos_floor.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.chaos import run_chaos_sweep  # noqa: E402
from repro.faults.plan import load_plan  # noqa: E402
from repro.sim import SimulationConfig  # noqa: E402
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec  # noqa: E402

PLAN_DIR = REPO_ROOT / "examples" / "faults"

#: scenario name -> (plan file, worker jobs for the chaos pass)
SCENARIOS = {
    "crash/worker-kill": ("worker-crash.json", 2),
    "corrupt/cache-flip": ("corrupt-cache.json", 1),
    "dead-hub/blackhole": ("dead-hub.json", 1),
}
BRANCHES = 4000
WARMUP = 800


def _grid() -> list[SweepCell]:
    """The canonical chaos panel: 2 systems × 2 benchmarks, small cells."""
    systems = {
        "gshare-4": SystemSpec.single("gshare", 4),
        "gskew-4": SystemSpec.single("2bc-gskew", 4),
    }
    config = SimulationConfig(n_branches=BRANCHES, warmup=WARMUP)
    return [
        SweepCell(label, bench, system, ProgramSpec(benchmark=bench), config)
        for label, system in systems.items()
        for bench in ("swim", "gcc")
    ]


def run_scenarios(progress: bool = False) -> list[dict]:
    rows: list[dict] = []
    for scenario, (plan_name, jobs) in SCENARIOS.items():
        plan = load_plan(PLAN_DIR / plan_name)
        report = run_chaos_sweep(_grid(), plan, jobs=jobs)
        if progress:
            print(f"  {scenario}: {report.summary()}", file=sys.stderr)
        counts = (report.injections or {}).get("counts", {})
        rows.append({
            "scenario": scenario,
            "plan": plan_name,
            "jobs": jobs,
            "cells": report.cells,
            "identical": report.identical,
            "quarantined": len(report.quarantined),
            "faults_injected": sum(counts.values()) + report.crashes_injected,
            "reference_seconds": round(report.reference_seconds, 4),
            "chaos_seconds": round(report.chaos_seconds, 4),
            "recovery_overhead": round(report.recovery_overhead, 4),
        })
    return rows


def check_floor(rows: list[dict], floor_path: Path) -> list[str]:
    """Failure messages against the committed floor.

    ``identical`` and ``max_quarantined`` gate the recovery path's
    correctness and carry NO tolerance; ``max_recovery_overhead`` is a
    wall-clock ratio widened by the usual band (``tolerance`` < 1
    divides the ceiling up, mirroring how the other floors scale their
    minima down).
    """
    floors = json.loads(floor_path.read_text())
    tolerance = floors.get("tolerance", 0.75)
    by_scenario = {entry["scenario"]: entry for entry in rows}
    failures: list[str] = []

    for scenario, ceiling in floors.get("max_recovery_overhead", {}).items():
        entry = by_scenario.get(scenario)
        if entry is None:
            failures.append(f"{scenario}: floor set but scenario not measured")
            continue
        if not entry["identical"]:
            failures.append(
                f"{scenario}: chaos results are NOT bit-identical to the "
                "fault-free reference (no tolerance — this gates recovery "
                "correctness, not machine speed)"
            )
        allowed = ceiling / tolerance
        if entry["recovery_overhead"] > allowed:
            failures.append(
                f"{scenario}: recovery overhead {entry['recovery_overhead']:.2f}x "
                f"exceeds {allowed:.2f}x (ceiling {ceiling:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
        if entry["faults_injected"] < 1:
            failures.append(
                f"{scenario}: no faults were injected — the scenario "
                "proved nothing (plan/seed drift?)"
            )
        quarantine_cap = floors.get("max_quarantined", 0)
        if entry["quarantined"] > quarantine_cap:
            failures.append(
                f"{scenario}: {entry['quarantined']} cells quarantined, "
                f"cap is {quarantine_cap} (no tolerance)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "benchmarks" / "BENCH_chaos.json"
    )
    parser.add_argument("--check-floor", type=Path, default=None)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    print("profiling chaos recovery…", file=sys.stderr)
    rows = run_scenarios(progress=not args.quiet)
    document = {
        "schema": "bench-chaos/1",
        "branches_per_cell": BRANCHES,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(document, indent=1) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)

    if args.check_floor is not None:
        failures = check_floor(rows, args.check_floor)
        for failure in failures:
            print(f"FLOOR FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("floor check: all scenarios within bounds", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
