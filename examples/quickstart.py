"""Quickstart: build a prophet/critic hybrid and measure it.

Runs the paper's headline configuration — an 8KB 2Bc-gskew prophet with
an 8KB tagged-gshare critic using 8 future bits — against a 16KB
2Bc-gskew baseline (the EV8-style predictor) on the synthetic `gcc`
benchmark, with genuine wrong-path fetch.

    python examples/quickstart.py [n_branches]
"""

import sys

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.predictors import make_critic, make_prophet
from repro.sim import SimulationConfig, simulate
from repro.workloads import benchmark


def main() -> None:
    n_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    config = SimulationConfig(n_branches=n_branches, warmup=n_branches // 5)

    print(f"simulating {n_branches} branches of synthetic gcc "
          f"(warmup {config.warmup}) ...")

    baseline = SinglePredictorSystem(make_prophet("2bc-gskew", 16))
    base_stats = simulate(benchmark("gcc"), baseline, config)

    hybrid = ProphetCriticSystem(
        make_prophet("2bc-gskew", 8),
        make_critic("tagged-gshare", 8),
        future_bits=8,
    )
    hyb_stats = simulate(benchmark("gcc"), hybrid, config)

    print()
    print(f"{'configuration':34s} {'misp/Kuops':>10s} {'misp %':>8s} {'uops/flush':>11s}")
    for label, stats in (
        ("16KB 2Bc-gskew (prophet alone)", base_stats),
        ("8KB 2Bc-gskew + 8KB t.gshare", hyb_stats),
    ):
        print(
            f"{label:34s} {stats.misp_per_kuops:10.3f} "
            f"{100 * stats.mispredict_rate:7.2f}% {stats.uops_per_flush:11.0f}"
        )

    reduction = 100 * (1 - hyb_stats.misp_per_kuops / base_stats.misp_per_kuops)
    print()
    print(f"mispredict reduction: {reduction:.1f}%  (paper's headline: ~39%)")
    print(f"critique census: {hyb_stats.census.as_dict()}")
    print(f"critic redirects (FTQ-confined flushes): {hyb_stats.critic_redirects}")


if __name__ == "__main__":
    main()
