"""Record once, sweep many: the on-disk branch-trace workflow.

Records a benchmark's committed branch stream to a portable trace file,
then shows the three things the trace subsystem guarantees:

1. **Exact replay** — simulating the trace-backed program reproduces the
   live run's statistics bit-for-bit, wrong-path fetch included.
2. **Cache synergy** — a trace-backed spec hashes by the trace's content
   digest, so replay cells hit the sweep engine's on-disk result cache
   across runs (and across processes).
3. **Registration** — a registered trace behaves like any named
   benchmark, so experiment-style grids iterate it transparently.

    PYTHONPATH=src python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.sim import SimulationConfig, make_engine, simulate
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec
from repro.workloads import (
    benchmark,
    read_trace_header,
    record_trace,
    register_trace,
    replay_program,
)

BENCH = "gcc"
CONFIG = SimulationConfig(n_branches=12_000, warmup=3_000)
HYBRID = SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    trace_file = workdir / f"{BENCH}.trace"

    # -- 1. record ----------------------------------------------------------
    header = record_trace(benchmark(BENCH), CONFIG.n_branches, trace_file)
    print(f"recorded {header.record_count} branches of {BENCH} "
          f"-> {trace_file} ({trace_file.stat().st_size} bytes gzipped)")
    print(f"content digest: {header.digest[:16]}…  "
          f"(the trace's identity everywhere, independent of path)")

    # -- 2. exact replay ----------------------------------------------------
    live = simulate(benchmark(BENCH), HYBRID.build(), CONFIG)
    replayed = simulate(replay_program(trace_file), HYBRID.build(), CONFIG)
    assert live.summary() == replayed.summary(), "replay must be bit-identical"
    print(f"live vs replayed misp/Kuops: {live.misp_per_kuops:.3f} == "
          f"{replayed.misp_per_kuops:.3f}  (bit-for-bit, wrong path included)")

    # -- 3. trace-backed specs hit the result cache -------------------------
    cell = SweepCell(
        system_label="hybrid", bench_name=BENCH,
        system=HYBRID, program=ProgramSpec.from_trace(trace_file), config=CONFIG,
    )
    cold = make_engine(jobs=1, cache_dir=workdir / "cache")
    cold.run_cells([cell])
    warm = make_engine(jobs=1, cache_dir=workdir / "cache")  # fresh engine, same dir
    warm.run_cells([cell])
    print(f"cold engine: {cold.cache.misses} miss; "
          f"warm engine: {warm.cache.hits} hit  (keyed by digest, not path)")

    # -- 4. registered traces act like benchmarks ---------------------------
    name = register_trace(trace_file, name=f"{BENCH}-recorded")
    spec = ProgramSpec(benchmark=name)  # resolves to the trace file
    stats = simulate(spec.build(), HYBRID.build(), CONFIG)
    print(f"registered as {name!r}: misp/Kuops {stats.misp_per_kuops:.3f} "
          f"via ProgramSpec(benchmark={name!r})")

    print(f"\ntrace header: {read_trace_header(trace_file).describe()}")


if __name__ == "__main__":
    main()
