"""Build a custom program and watch the critic learn the paper's Figure 2.

Hand-constructs the control-flow situation of the paper's §3.1 example:
a function whose head branch depends on the *caller*, where a loop inside
the function pushes the caller's identity out of any history register's
reach — but the caller's post-return code sits only a few predictions
ahead, so the critic's future bits identify it (the taxi driver
recognising the neighbourhood by the streets ahead).

    python examples/custom_workload.py
"""

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.predictors import BimodalPredictor, TaggedGsharePredictor
from repro.sim import SimulationConfig, simulate
from repro.workloads import (
    BiasedRandomBehavior,
    CallerCorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.workloads.program import BasicBlock, BlockKind, Program

BRANCH_A_PC = 0x2020


def build_program() -> Program:
    """main coin-flips between two call sites of f; f loops, then runs
    branch A whose direction is fixed per caller."""
    blocks = [
        BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1, fallthrough=2,
                   behavior=BiasedRandomBehavior(0.5)),
        BasicBlock(1, 0x1010, 3, BlockKind.CALL, taken_target=20, fallthrough=3),
        BasicBlock(2, 0x1020, 3, BlockKind.CALL, taken_target=20, fallthrough=5),
        BasicBlock(3, 0x1030, 3, BlockKind.COND, taken_target=4, fallthrough=4,
                   behavior=PatternBehavior("T")),
        BasicBlock(4, 0x1040, 3, BlockKind.COND, taken_target=7, fallthrough=7,
                   behavior=PatternBehavior("T")),
        BasicBlock(5, 0x1050, 3, BlockKind.COND, taken_target=6, fallthrough=6,
                   behavior=PatternBehavior("N")),
        BasicBlock(6, 0x1060, 3, BlockKind.COND, taken_target=7, fallthrough=7,
                   behavior=PatternBehavior("N")),
        BasicBlock(7, 0x1070, 4, BlockKind.JUMP, taken_target=0),
        BasicBlock(20, 0x2000, 3, BlockKind.JUMP, taken_target=21),
        BasicBlock(21, 0x2010, 4, BlockKind.COND, taken_target=20, fallthrough=22,
                   behavior=LoopBehavior(trip_count=12)),
        BasicBlock(22, BRANCH_A_PC, 4, BlockKind.COND, taken_target=23, fallthrough=24,
                   behavior=CallerCorrelatedBehavior(salt=1)),
        BasicBlock(23, 0x2030, 3, BlockKind.COND, taken_target=25, fallthrough=25,
                   behavior=PatternBehavior("T")),
        BasicBlock(24, 0x2040, 3, BlockKind.COND, taken_target=25, fallthrough=25,
                   behavior=PatternBehavior("N")),
        BasicBlock(25, 0x2050, 2, BlockKind.RETURN),
    ]
    program = Program(name="figure2-demo", blocks=blocks, entry=0, seed=11)
    program.validate()
    return program


def main() -> None:
    config = SimulationConfig(
        n_branches=16_000, warmup=4_000, use_btb=False, collect_per_site=True
    )

    def report(label, stats):
        a = stats.per_site.get(BRANCH_A_PC, [0] * 5)
        print(f"{label:28s} branch A: {a[2]:4d}/{a[0]} mispredicted "
              f"(prophet alone would miss {a[1]})")

    prophet_alone = simulate(
        build_program(), SinglePredictorSystem(BimodalPredictor(4096)), config
    )
    report("prophet alone", prophet_alone)

    for fb in (0, 4):
        hybrid = ProphetCriticSystem(
            BimodalPredictor(4096),
            TaggedGsharePredictor(sets=256, ways=6, history_length=12),
            future_bits=fb,
        )
        stats = simulate(build_program(), hybrid, config)
        report(f"prophet/critic, {fb} future bits", stats)

    print()
    print("with 0 future bits the critic sees only the loop's constant bits;")
    print("with 4 it sees the caller's continuation and fixes branch A outright.")


if __name__ == "__main__":
    main()
