"""Custom predictor composition through the registry and config files.

The paper's claim is architectural — bolt a critic onto *any* prophet —
and the registry makes "any" literal: every predictor kind registers a
typed geometry schema and a role capability, systems are specs over the
registry, and specs round-trip through JSON. This example:

1. lists the registry (what `python -m repro list` prints);
2. composes systems the paper never measured — a YAGS prophet with a
   perceptron critic, a TAGE baseline, and a tournament-of-registry-kinds
   prophet — mixing explicit geometries with Table-3 budget shorthands;
3. writes the grid to a JSON config file, reloads it, and proves the
   round trip is exact (equal specs, equal content hashes);
4. runs the grid through the sweep engine.

The written config file is exactly what the CLI consumes::

    python -m repro sweep --systems custom_systems.json --benchmarks gcc,tpcc

Run me:

    python examples/custom_system.py [n_branches]
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.predictors import registered_predictors
from repro.sim import PredictorSpec, SimulationConfig, SystemSpec, run_sweep


def build_systems() -> dict[str, SystemSpec]:
    """Compositions outside the paper's Table-3 vocabulary."""
    return {
        # Explicit geometry for the prophet, Table-3 shorthand for the critic.
        "yags+perceptron": SystemSpec(
            kind="hybrid",
            prophet=PredictorSpec("yags", params={"choice_entries": 8192,
                                                  "history_length": 14}),
            critic=PredictorSpec("perceptron", budget_kb=8),
            future_bits=8,
        ),
        # The design that superseded prophet/critic, as a plain baseline
        # (schema defaults: 6 components x 1024 entries, ~12KB).
        "tage-12kb": SystemSpec(kind="single", prophet=PredictorSpec("tage")),
        # A conventional hybrid: registry kinds nest inside the tournament.
        "tournament": SystemSpec.from_config({
            "kind": "single",
            "prophet": {"kind": "tournament", "params": {
                "component_a": {"kind": "local"},
                "component_b": {"kind": "gshare", "budget_kb": 8},
            }},
        }),
        # The paper's own 8+8 headline hybrid, for reference.
        "paper-8+8": SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, 8),
    }


def main() -> None:
    n_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    print("registry:")
    for info in registered_predictors():
        role = "prophet+critic" if info.critic_capable else "prophet-only"
        print(f"  {info.kind:<21} {role:<15} params: {', '.join(info.param_names())}")

    systems = build_systems()

    # Round-trip the whole grid through a JSON config file.
    config_path = Path(tempfile.gettempdir()) / "custom_systems.json"
    config_path.write_text(
        json.dumps({label: spec.to_config() for label, spec in systems.items()},
                   indent=2),
        encoding="utf-8",
    )
    reloaded = {
        label: SystemSpec.from_config(config)
        for label, config in json.loads(config_path.read_text("utf-8")).items()
    }
    assert reloaded == systems, "config round trip must be exact"
    print(f"\nwrote {config_path} — try:  python -m repro sweep "
          f"--systems {config_path} --benchmarks gcc,tpcc")

    print(f"\nsimulating {n_branches} branches of gcc and tpcc per system ...\n")
    config = SimulationConfig(n_branches=n_branches, warmup=n_branches // 5)
    result = run_sweep(reloaded, {"gcc": "gcc", "tpcc": "tpcc"}, config)

    print(f"{'system':18s} {'gcc':>8s} {'tpcc':>8s} {'AVG':>8s}   (misp/Kuops)")
    for label in systems:
        values = [result.get(label, bench).misp_per_kuops for bench in ("gcc", "tpcc")]
        avg = sum(values) / len(values)
        print(f"{label:18s} {values[0]:8.3f} {values[1]:8.3f} {avg:8.3f}")


if __name__ == "__main__":
    main()
