"""Figure-5-style sweep: how many future bits should the critic wait for?

Sweeps the critic's future-bit count on a couple of contrasting
benchmarks: `gcc` (correlation-rich integer code) and `tpcc`
(random-dominated server code, where the paper shows future bits beyond
the first never help).

    python examples/future_bits_sweep.py [n_branches]
"""

import sys

from repro.core import ProphetCriticSystem
from repro.predictors import make_critic, make_prophet
from repro.sim import SimulationConfig, simulate
from repro.sim.results import render_series
from repro.workloads import benchmark

FUTURE_BITS = (0, 1, 4, 8, 12)


def main() -> None:
    n_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    config = SimulationConfig(n_branches=n_branches, warmup=n_branches // 5)

    for bench_name in ("gcc", "tpcc"):
        series = []
        for fb in FUTURE_BITS:
            hybrid = ProphetCriticSystem(
                make_prophet("perceptron", 8),
                make_critic("tagged-gshare", 8),
                future_bits=fb,
            )
            stats = simulate(benchmark(bench_name), hybrid, config)
            series.append(stats.misp_per_kuops)
        print(render_series(f"{bench_name} misp/Kuops", FUTURE_BITS, series))
    print()
    print("expected shape: a clear drop from 0 to 1 future bit everywhere;")
    print("gcc keeps (some) improving; tpcc is flat-to-worse past 1 bit.")


if __name__ == "__main__":
    main()
