"""A large config-file sweep with workers, live progress — and a kill.

The sweep-scale engine streams each finished cell into the result cache
*as it completes* (pool workers write their own results), so an
interrupted sweep is not lost work: re-running the same command with the
same ``--cache-dir`` resumes from everything already computed. This
example demonstrates the whole loop end to end, through the real CLI:

1. writes a 12-system JSON config file (the ``docs/CONFIG.md`` schema);
2. launches ``python -m repro sweep --systems ... --jobs 2 --progress
   --cache-dir ...`` as a subprocess and **kills it** (SIGKILL — an
   honest crash, no cleanup) once a few ``[done/total]`` progress lines
   have streamed out;
3. re-runs the identical sweep to completion and shows, from the
   engine's own cache telemetry, that the killed run's finished cells
   came back as cache hits — only the remainder was simulated.

Run me:

    python examples/sweep_resume.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim import PredictorSpec, SystemSpec  # noqa: E402

BENCHMARKS = "gcc,msvc7"
BRANCHES = 2_000
#: Kill the first run once this many cells have finished.
KILL_AFTER_CELLS = 5


def build_systems() -> list[SystemSpec]:
    """Twelve systems: a spread of singles, geometries and hybrids."""
    return [
        SystemSpec.single("gshare", 8),
        SystemSpec.single("gshare", 4),
        SystemSpec.single("2bc-gskew", 8),
        SystemSpec.single("2bc-gskew", 16),
        SystemSpec.single("perceptron", 4),
        SystemSpec.single("tage", 8),
        SystemSpec(kind="single", prophet=PredictorSpec("bimodal")),
        SystemSpec(kind="single", prophet=PredictorSpec("yags")),
        SystemSpec(kind="single", prophet=PredictorSpec("local")),
        SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
        SystemSpec.hybrid("gshare", 8, "tagged-gshare", 8, future_bits=4),
        SystemSpec.hybrid("2bc-gskew", 8, "gshare", 2, future_bits=1),
    ]


def sweep_command(systems_file: Path, cache_dir: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro", "sweep",
        "--systems", str(systems_file),
        "--benchmarks", BENCHMARKS,
        "--branches", str(BRANCHES),
        "--jobs", "2",
        "--cache-dir", str(cache_dir),
        "--progress",
    ]


def _env_with_repo_src() -> dict[str, str]:
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = repo_src + (os.pathsep + existing if existing else "")
    return env


def run_and_kill_after(command: list[str], cells: int) -> int:
    """Start the sweep, SIGKILL it after ``cells`` progress lines."""
    env = _env_with_repo_src()
    process = subprocess.Popen(
        command, env=env, stderr=subprocess.PIPE, stdout=subprocess.DEVNULL, text=True
    )
    seen = 0
    for line in process.stderr:
        if line.startswith("["):
            seen += 1
            print(f"  first run: {line.strip()}")
        if seen >= cells:
            process.send_signal(signal.SIGKILL)
            break
    process.wait()
    print(f"  killed the sweep after {seen} finished cells (SIGKILL)")
    return seen


def run_to_completion(command: list[str]) -> str:
    completed = subprocess.run(
        command, env=_env_with_repo_src(), capture_output=True, text=True, check=True
    )
    print(completed.stdout)
    return completed.stderr


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="sweep-resume-") as workdir:
        workdir = Path(workdir)
        systems_file = workdir / "systems.json"
        cache_dir = workdir / "cache"
        systems_file.write_text(
            json.dumps([spec.to_config() for spec in build_systems()], indent=2)
        )
        total = len(build_systems()) * len(BENCHMARKS.split(","))
        command = sweep_command(systems_file, cache_dir)

        print(f"sweep: {total} cells, 2 workers, cache under {cache_dir}")
        print("\n-- run 1: killed mid-sweep ------------------------------")
        run_and_kill_after(command, KILL_AFTER_CELLS)

        print("\n-- run 2: same command, same cache ----------------------")
        stderr = run_to_completion(command)
        cache_line = next(
            (line for line in stderr.splitlines() if line.startswith("cache:")), ""
        )
        print(f"  {cache_line}")
        hits = int(cache_line.split()[1]) if cache_line else 0
        if hits < KILL_AFTER_CELLS:
            print("  unexpected: fewer hits than cells finished before the kill")
            return 1
        print(
            f"  resumed: {hits} of {total} cells came from the killed run's "
            f"cache; only {total - hits} were re-simulated"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
