"""uPC on the Table-2 machine: what mispredicts cost end to end.

Runs the cycle-stepped decoupled front end + interval back end
(`repro.pipeline`) for a 16KB 2Bc-gskew baseline and the 8+8
prophet/critic hybrid, reporting uPC, flush distance and wrong-path
fetch — the quantities behind the paper's Figures 9/10 and the §1
headline ("one flush per 418 uops → one per 680").

    python examples/pipeline_performance.py [n_branches]
"""

import sys

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.pipeline import TimedMachine
from repro.predictors import make_critic, make_prophet
from repro.workloads import benchmark


def main() -> None:
    n_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    warmup = n_branches // 5

    def run(label, system):
        machine = TimedMachine(benchmark("gcc"), system)
        result = machine.run(n_branches, warmup=warmup)
        print(
            f"{label:30s} uPC={result.upc:5.3f}  "
            f"uops/flush={result.uops_per_flush:7.0f}  "
            f"wrong-path fetch={100 * result.wrong_path_fetch_fraction:5.1f}%  "
            f"FTQ-confined redirects={result.critic_redirects}"
        )
        return result

    base = run("16KB 2Bc-gskew", SinglePredictorSystem(make_prophet("2bc-gskew", 16)))
    hyb = run(
        "8KB 2Bc-gskew + 8KB t.gshare",
        ProphetCriticSystem(
            make_prophet("2bc-gskew", 8), make_critic("tagged-gshare", 8), future_bits=8
        ),
    )
    print()
    speedup = 100 * (hyb.upc / base.upc - 1)
    print(f"uPC delta: {speedup:+.1f}%   (paper: +7.8% average, +18% on gcc)")


if __name__ == "__main__":
    main()
