"""Bench: Table 3 — predictor geometries and hardware budgets."""

from benchmarks.conftest import run_and_report


def test_bench_table3(benchmark, scale):
    result = run_and_report(benchmark, "table3", scale)
    assert all(result.column("within_budget"))
