"""Kernel-throughput bench: branches/sec of the simulation hot path.

Unlike the figure/table benches (which regenerate the paper's results),
this bench tracks the **simulator's own speed** on the canonical
headline cells — the first perf trajectory of the repo. The same cells,
methodology and JSON schema are available standalone via
``tools/profile_kernel.py``; CI runs that script with ``--quick`` and
gates on ``benchmarks/BENCH_kernel_floor.json``.

``REPRO_SCALE`` scales the simulated branch count as in every other
bench (via the session-scoped ``scale`` fixture).

The ``*_batched`` benches time the batched structure-of-arrays backend
on the same cells with the memoized architectural trace warm (an
untimed batched run precedes the timed one), mirroring the third column
of ``tools/profile_kernel.py``; bit-identity with the scalar backend is
asserted on every run.
"""

from __future__ import annotations


def _throughput_cell(
    benchmark, system_spec, bench_name: str, scale: float, backend: str = "scalar"
):
    from dataclasses import replace

    from repro.sim.driver import SimulationConfig, simulate
    from repro.sim.specs import ProgramSpec

    n_branches = max(4_000, int(20_000 * scale))
    config = SimulationConfig(
        n_branches=n_branches,
        warmup=max(400, n_branches // 10),
        collect_predictor_stats=False,
        backend=backend,
    )
    program = ProgramSpec(benchmark=bench_name).build()
    # Untimed warm-up compiles the CFG transition tables.
    simulate(program, system_spec.build(), SimulationConfig(n_branches=2_000, warmup=200))
    if backend == "batched":
        # Steady-state methodology: populate the memoized architectural
        # trace so the timed run measures replay, not the executor walk.
        simulate(program, system_spec.build(), config)

    stats = benchmark.pedantic(
        lambda: simulate(program, system_spec.build(), config),
        rounds=1,
        iterations=1,
    )
    elapsed = benchmark.stats.stats.mean
    rate = n_branches / elapsed
    print(f"\n{bench_name} [{backend}]: {rate:,.0f} branches/sec ({n_branches} branches)")
    benchmark.extra_info["branches"] = n_branches
    benchmark.extra_info["branches_per_sec"] = round(rate, 1)
    benchmark.extra_info["backend"] = backend
    assert stats.branches == n_branches - config.warmup
    if backend == "batched":
        scalar_stats = simulate(
            program, system_spec.build(), replace(config, backend="scalar")
        )
        assert (stats.mispredicts, stats.committed_uops, stats.fetched_uops) == (
            scalar_stats.mispredicts,
            scalar_stats.committed_uops,
            scalar_stats.fetched_uops,
        )


def test_bench_kernel_hybrid_headline(benchmark, scale):
    """The acceptance cell: 8K+8K prophet/critic hybrid on gcc."""
    from repro.sim.specs import SystemSpec

    _throughput_cell(
        benchmark,
        SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
        "gcc",
        scale,
    )


def test_bench_kernel_baseline_headline(benchmark, scale):
    """The 16KB 2Bc-gskew baseline on gcc."""
    from repro.sim.specs import SystemSpec

    _throughput_cell(
        benchmark,
        SystemSpec.single("2bc-gskew", 16),
        "gcc",
        scale,
    )


def test_bench_kernel_baseline_batched(benchmark, scale):
    """The 16KB 2Bc-gskew baseline on gcc, batched SoA backend."""
    from repro.sim.specs import SystemSpec

    _throughput_cell(
        benchmark,
        SystemSpec.single("2bc-gskew", 16),
        "gcc",
        scale,
        backend="batched",
    )


def test_bench_kernel_hybrid_batched(benchmark, scale):
    """The 8K+8K prophet/critic hybrid on gcc, batched SoA backend."""
    from repro.sim.specs import SystemSpec

    _throughput_cell(
        benchmark,
        SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
        "gcc",
        scale,
        backend="batched",
    )
