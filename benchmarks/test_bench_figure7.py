"""Bench: Figure 7 — hybrids vs same-budget conventional predictors.

Shape check: at each total budget, at least one half+half hybrid beats
its same-budget conventional predictor for every prophet family (the
paper reports 15-31% reductions; synthetic workloads reproduce the sign
and ordering, not the magnitudes).
"""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.parametrize("total_kb", [16, 32])
def test_bench_figure7(benchmark, scale, total_kb):
    result = run_and_report(benchmark, f"figure7{'a' if total_kb == 16 else 'b'}", scale)
    rows = result.rows
    # Rows come in groups of three: alone, +f.perceptron, +t.gshare.
    for base in range(0, len(rows), 3):
        alone = rows[base][1]
        best_hybrid = min(rows[base + 1][1], rows[base + 2][1])
        # At laptop scale (default 16K branches) table warmup dominates;
        # the hybrid's win grows with REPRO_SCALE (see EXPERIMENTS.md).
        assert best_hybrid <= alone * 1.12, (
            f"{rows[base][0]}: best hybrid {best_hybrid} vs alone {alone}"
        )
