"""Bench: Figure 8 — distribution of critiques vs future bits."""

from repro.core.critiques import CritiqueKind

from benchmarks.conftest import run_and_report


def test_bench_figure8(benchmark, scale):
    result = run_and_report(benchmark, "figure8", scale)
    wins = result.series_values(CritiqueKind.INCORRECT_DISAGREE.value)
    damage = result.series_values(CritiqueKind.CORRECT_DISAGREE.value)
    # Paper: wins exceed damage at every future-bit count. (The paper's
    # other observation — correct_agree dominating — needs trace-length
    # scale; it emerges with REPRO_SCALE >= 4.)
    assert all(w >= d for w, d in zip(wins, damage))
    assert sum(wins) > 0
