"""Sweep-throughput bench: cells/sec through the execution engine.

Companion to ``test_bench_kernel.py``: where the kernel bench tracks one
``simulate()`` call, this bench tracks the **execution layer** — the
persistent pool, per-worker memoized builds and streaming scheduling
that every grid runs through. The full canonical panel, the frozen
pre-overhaul comparison and the CI floor live in
``tools/profile_sweep.py`` (gated against
``benchmarks/BENCH_sweep_floor.json``); this bench keeps a small
steady-state cell in the pytest-benchmark trajectory.

``REPRO_SCALE`` scales the per-cell branch count as in every other
bench.
"""

from __future__ import annotations


def test_bench_sweep_steady_state(benchmark, scale):
    """Steady-state cells/sec: warm serial engine, result cache off."""
    from repro.sim import SimulationConfig, SweepEngine
    from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec

    n_branches = max(1_000, int(1_000 * scale))
    config = SimulationConfig(n_branches=n_branches, warmup=n_branches // 5)
    systems = [
        SystemSpec.single("gshare", 8),
        SystemSpec.single("2bc-gskew", 8),
        SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8),
    ]
    cells = [
        SweepCell(f"sys{i}", bench, system, ProgramSpec(benchmark=bench), config)
        for bench in ("gcc", "webmark")
        for i, system in enumerate(systems)
    ]
    engine = SweepEngine()
    engine.run_cells(cells)  # untimed warm-up: pool-free, builds memoized

    results = benchmark.pedantic(lambda: engine.run_cells(cells), rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    rate = len(cells) / elapsed
    print(f"\nsweep steady state: {rate:,.1f} cells/sec ({len(cells)} cells)")
    benchmark.extra_info["cells"] = len(cells)
    benchmark.extra_info["cells_per_sec"] = round(rate, 2)
    assert len(results) == len(cells)
    assert all(r.branches == n_branches - config.warmup for r in results)


def test_floor_check_logic_flags_regressions(tmp_path):
    """The --check-floor gate fires on >25% drops and only then."""
    import json
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    from profile_sweep import check_floor

    floor_path = tmp_path / "floor.json"
    floor_path.write_text(
        json.dumps({"tolerance": 0.75, "min_speedup_vs_reference": {"steady/12x4": 2.0}})
    )
    ok = [{"grid": "steady/12x4", "speedup_vs_reference": 1.6}]
    bad = [{"grid": "steady/12x4", "speedup_vs_reference": 1.4}]
    missing = [{"grid": "steady/12x4"}]
    assert check_floor(ok, floor_path) == []
    assert len(check_floor(bad, floor_path)) == 1
    assert "floor set but --compare-reference not run" in check_floor(missing, floor_path)[0]


def test_committed_snapshot_satisfies_committed_floor():
    """The repo's own BENCH_sweep.json must pass the repo's own floor."""
    import json
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo / "tools"))
    from profile_sweep import check_floor

    snapshot = json.loads((repo / "benchmarks" / "BENCH_sweep.json").read_text())
    failures = check_floor(snapshot["grids"], repo / "benchmarks" / "BENCH_sweep_floor.json")
    assert failures == []
