"""Bench: Figure 5 — misp/Kuops vs future bits on the six named benchmarks.

Shape checks: one future bit helps the average (the paper's central §7.1
claim); the per-benchmark optimum varies.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure5(benchmark, scale):
    result = run_and_report(benchmark, "figure5", scale)
    avg = result.series_values("AVG")
    fb0, fb1 = avg[0], avg[1]
    # The first future bit must not hurt the average; with any reasonable
    # scale it helps (paper: ~15% drop). Laptop scale allows 5% noise.
    assert fb1 <= fb0 * 1.05
    # tpcc (random-dominated) must gain little from future bits past 1.
    tpcc = result.series_values("tpcc")
    assert min(tpcc[2:]) >= tpcc[1] * 0.9
