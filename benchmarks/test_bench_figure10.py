"""Bench: Figure 10 — uPC per suite for the 2Bc-gskew + tagged gshare hybrid."""

from benchmarks.conftest import run_and_report


def test_bench_figure10(benchmark, scale):
    result = run_and_report(benchmark, "figure10", scale)
    # Paper: the hybrid never loses to the 16KB prophet on any suite
    # (within noise at laptop scale), and INT00 gains more than FP00.
    for suite in ("INT00", "FP00", "WEB", "MM", "PROD", "SERV", "WS"):
        series = result.series_values(suite)
        alone, hybrids = series[0], series[1:]
        assert max(hybrids) >= alone * 0.95, f"{suite}: {series}"
