"""Bench: Figure 9 — uPC of 16KB prophets vs 8+8 hybrids (timing model)."""

from benchmarks.conftest import run_and_report


def test_bench_figure9(benchmark, scale):
    result = run_and_report(benchmark, "figure9", scale)
    # For each prophet, the best hybrid configuration should match or
    # beat the 16KB prophet alone (paper: +2.7% .. +8%).
    for prophet in ("gshare", "2bc-gskew", "perceptron"):
        series = result.series_values(prophet)
        alone, hybrids = series[0], series[1:]
        assert max(hybrids) >= alone * 0.97, f"{prophet}: {series}"
