"""Bench: the paper's §1 headline — 8K+8K hybrid vs 16KB 2Bc-gskew."""

from benchmarks.conftest import run_and_report


def test_bench_headline(benchmark, scale):
    result = run_and_report(benchmark, "headline", scale)
    rows = {row[0]: row for row in result.rows}
    baseline_misp = rows["misp/Kuops (panel)"][1]
    hybrid_misp = rows["misp/Kuops (panel)"][2]
    # The hybrid must reduce panel mispredicts (paper: -39%).
    assert hybrid_misp < baseline_misp
    # Flush distance must grow (paper: 418 -> 680 uops).
    assert rows["uops per flush (panel)"][2] > rows["uops per flush (panel)"][1]
    # gcc's mispredict rate must drop (paper: 3.11% -> 1.23%).
    assert rows["gcc mispredict %"][2] < rows["gcc mispredict %"][1]
