"""Bench: Figure 6 — accuracy grids for three prophet/critic pairings.

The bench default trims the grid (one benchmark, three future-bit
points) to stay laptop-friendly; the module API exposes the full grid.
"""

import pytest

from benchmarks.conftest import run_and_report

TRIMMED = dict(
    prophet_kbs=(4, 16),
    critic_kbs=(2, 8, 32),
    future_bits=(None, 1, 8),
    benchmarks=("gcc",),
)


@pytest.mark.parametrize("sub", ["a", "b", "c"])
def test_bench_figure6(benchmark, scale, sub):
    result = run_and_report(benchmark, f"figure6{sub}", scale, **TRIMMED)
    # Larger critics should not hurt: for the 16KB prophet, the 32KB
    # critic at 8 future bits beats (or matches) the 2KB critic.
    col = result.headers.index("fb=8")
    by_key = {(row[0], row[1]): row[col] for row in result.rows}
    assert by_key[(16, 32)] <= by_key[(16, 2)] * 1.10
