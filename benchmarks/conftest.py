"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and prints the
rows/series the paper reports. ``REPRO_SCALE`` (float, default 1.0)
multiplies the simulated branch count — raise it (e.g. ``REPRO_SCALE=8``)
for numbers closer to the paper's 30M-instruction traces; the default
keeps the whole harness laptop-friendly.

``REPRO_JOBS`` (int) fans each experiment's sweep cells out over a
process pool, and ``REPRO_CACHE_DIR`` (path) caches per-cell results on
disk — both backed by :mod:`repro.sim.execution` and guaranteed not to
change a single reported number (see ``tests/sim/test_execution.py``).

Benches run with ``rounds=1``: each experiment is a deterministic
simulation whose *result* is the point; wall-clock is secondary.
"""

from __future__ import annotations

import os

import pytest


def repro_scale() -> float:
    """The REPRO_SCALE environment knob."""
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def repro_engine():
    """Engine from REPRO_JOBS / REPRO_CACHE_DIR (None = serial default)."""
    from repro.sim import make_engine

    try:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    except ValueError:
        jobs = 1
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    if jobs <= 1 and cache_dir is None:
        return None
    return make_engine(jobs=jobs, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def scale() -> float:
    return repro_scale()


def run_and_report(benchmark, experiment_id: str, scale: float, **kwargs):
    """Run one experiment under pytest-benchmark and print its rendering."""
    from repro.experiments import run_experiment

    engine = repro_engine()
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, scale=scale, engine=engine, **kwargs),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    print()
    print(text)
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["scale"] = scale
    return result
