"""Chaos bench: the recovery-overhead floor gate, kept honest.

The live harness — three canonical fault plans differentially verified
against fault-free references — lives in ``tools/profile_chaos.py``
(gated against ``benchmarks/BENCH_chaos_floor.json`` in CI's
chaos-smoke job). These tests pin the gate's halves without running a
sweep: the floor-check logic, the committed snapshot's agreement with
the committed floor, and the example plans' validity.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))
sys.path.insert(0, str(REPO / "src"))


def _ok_rows():
    return [
        {"scenario": "crash/worker-kill", "identical": True, "quarantined": 0,
         "faults_injected": 2, "recovery_overhead": 1.4},
        {"scenario": "corrupt/cache-flip", "identical": True, "quarantined": 0,
         "faults_injected": 3, "recovery_overhead": 1.1},
        {"scenario": "dead-hub/blackhole", "identical": True, "quarantined": 0,
         "faults_injected": 8, "recovery_overhead": 1.0},
    ]


def _floor(tmp_path):
    path = tmp_path / "floor.json"
    path.write_text(json.dumps({
        "tolerance": 0.75,
        "max_quarantined": 0,
        "max_recovery_overhead": {
            "crash/worker-kill": 2.5,
            "corrupt/cache-flip": 1.5,
            "dead-hub/blackhole": 1.5,
        },
    }))
    return path


def test_floor_check_logic_flags_regressions(tmp_path):
    from profile_chaos import check_floor

    floor_path = _floor(tmp_path)
    assert check_floor(_ok_rows(), floor_path) == []

    # A mismatch is an outright failure: NO tolerance on correctness.
    broken = _ok_rows()
    broken[0]["identical"] = False
    failures = check_floor(broken, floor_path)
    assert len(failures) == 1 and "NOT bit-identical" in failures[0]

    # Overhead gets the band: ceiling 1.5 / 0.75 = 2.0x allowed.
    slow = _ok_rows()
    slow[1]["recovery_overhead"] = 1.9
    assert check_floor(slow, floor_path) == []
    slower = _ok_rows()
    slower[1]["recovery_overhead"] = 2.1
    failures = check_floor(slower, floor_path)
    assert len(failures) == 1 and "overhead" in failures[0]

    # A scenario that injected nothing proved nothing.
    dud = _ok_rows()
    dud[2]["faults_injected"] = 0
    failures = check_floor(dud, floor_path)
    assert len(failures) == 1 and "no faults were injected" in failures[0]

    # Quarantined cells breach the cap with no tolerance.
    poisoned = _ok_rows()
    poisoned[0]["quarantined"] = 1
    failures = check_floor(poisoned, floor_path)
    assert len(failures) == 1 and "quarantined" in failures[0]

    # A floor naming an unmeasured scenario is a failure, not a skip.
    failures = check_floor(_ok_rows()[:2], floor_path)
    assert any("not measured" in f for f in failures)


def test_committed_snapshot_satisfies_committed_floor():
    from profile_chaos import check_floor

    snapshot = json.loads((REPO / "benchmarks" / "BENCH_chaos.json").read_text())
    floor_path = REPO / "benchmarks" / "BENCH_chaos_floor.json"
    assert check_floor(snapshot["scenarios"], floor_path) == []


def test_example_plans_are_valid_and_deterministic():
    from repro.faults.plan import load_plan

    plan_dir = REPO / "examples" / "faults"
    names = {p.name for p in plan_dir.glob("*.json")}
    assert {"worker-crash.json", "corrupt-cache.json", "dead-hub.json"} <= names
    for path in sorted(plan_dir.glob("*.json")):
        plan = load_plan(path)
        # Round-trips through the config codec and draws reproducibly.
        assert type(plan).from_config(plan.to_config()) == plan
        assert plan.stream("cache").random() == plan.stream("cache").random()


def test_profiler_scenarios_match_the_committed_plans():
    from profile_chaos import PLAN_DIR, SCENARIOS

    for scenario, (plan_name, jobs) in SCENARIOS.items():
        assert (PLAN_DIR / plan_name).exists(), f"{scenario} plan missing"
        assert jobs >= 1
