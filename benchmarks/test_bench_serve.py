"""Service-layer bench: the sweep daemon's floor gate, kept honest.

The full load harness — cold, warm-cache and 8-client dup-heavy
scenarios against a live daemon — lives in ``tools/profile_serve.py``
(gated against ``benchmarks/BENCH_serve_floor.json`` in CI's perf-smoke
job). These tests pin the two halves of that gate without booting a
daemon: the floor-check logic itself, and the committed snapshot's
agreement with the committed floor.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))


def test_floor_check_logic_flags_regressions(tmp_path):
    """The --check-floor gate fires on dedup and speedup drops, and only then."""
    from profile_serve import check_floor

    floor_path = tmp_path / "floor.json"
    floor_path.write_text(json.dumps({
        "tolerance": 0.75,
        "min_cache_served_fraction": {"dup-heavy/8-client": 0.8},
        "min_warm_speedup_vs_cold": 3.0,
    }))
    ok = [
        {"scenario": "cold/1-client", "seconds": 1.0, "cache_served_fraction": 0.0},
        {"scenario": "warm-cache/1-client", "seconds": 0.4, "cache_served_fraction": 1.0},
        {"scenario": "dup-heavy/8-client", "seconds": 0.5, "cache_served_fraction": 0.875},
    ]
    assert check_floor(ok, floor_path) == []

    # the dedup fraction has NO tolerance: 0.79 < 0.8 must fail outright.
    bad_dedup = [dict(row) for row in ok]
    bad_dedup[2]["cache_served_fraction"] = 0.79
    failures = check_floor(bad_dedup, floor_path)
    assert len(failures) == 1 and "dup-heavy" in failures[0]

    # the speedup ratio gets the 25% band: 2.5x passes (floor 3.0 * 0.75
    # = 2.25), 2.0x fails.
    slow_warm = [dict(row) for row in ok]
    slow_warm[1]["seconds"] = 0.4
    slow_warm[0]["seconds"] = 1.0
    assert check_floor(slow_warm, floor_path) == []
    slower = [dict(row) for row in ok]
    slower[1]["seconds"] = 0.5  # 2.0x speedup
    failures = check_floor(slower, floor_path)
    assert len(failures) == 1 and "speedup" in failures[0]

    # a floor naming an unmeasured scenario is a failure, not a skip.
    failures = check_floor(ok[:2], floor_path)
    assert any("not measured" in f for f in failures)


def test_committed_snapshot_satisfies_committed_floor():
    """The repo's own BENCH_serve.json must pass the repo's own floor."""
    from profile_serve import check_floor

    snapshot = json.loads((REPO / "benchmarks" / "BENCH_serve.json").read_text())
    failures = check_floor(
        snapshot["scenarios"], REPO / "benchmarks" / "BENCH_serve_floor.json"
    )
    assert failures == []
