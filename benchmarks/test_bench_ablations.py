"""Bench: design-choice ablations (oracle bits, filtering, insert policy, TAGE)."""

from benchmarks.conftest import run_and_report


def test_bench_ablation_oracle(benchmark, scale):
    result = run_and_report(benchmark, "ablation-oracle", scale)
    honest = result.rows[0][1]
    oracle = result.rows[1][1]
    # Oracle trace future bits must look (unrealistically) better —
    # the paper's §6 argument for wrong-path evaluation.
    assert oracle < honest


def test_bench_ablation_filtering(benchmark, scale):
    result = run_and_report(benchmark, "ablation-filtering", scale)
    # At high future-bit counts the filtered critic must beat the
    # unfiltered one (paper §7.2).
    last = result.rows[-1]
    assert last[1] <= last[2] * 1.05


def test_bench_ablation_insert_policy(benchmark, scale):
    result = run_and_report(benchmark, "ablation-insert-policy", scale)
    values = {row[0]: row[1] for row in result.rows}
    # Both policies must function; the paper's final-mispredict trigger
    # should not be materially worse than the alternative.
    assert values["final"] <= values["prophet"] * 1.15


def test_bench_ablation_tage(benchmark, scale):
    result = run_and_report(benchmark, "ablation-tage", scale)
    values = {row[0]: row[1] for row in result.rows}
    # Sanity: every configuration produces a finite, positive rate.
    assert all(v > 0 for v in values.values())
