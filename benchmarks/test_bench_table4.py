"""Bench: Table 4 — share of prophet predictions filtered by the critic."""

from benchmarks.conftest import run_and_report


def test_bench_table4(benchmark, scale):
    result = run_and_report(benchmark, "table4", scale)
    totals = result.column("pct_none_total")
    # The filter must pass most branches through implicitly (paper:
    # 65-78%); anything under half means the filter isn't filtering.
    assert all(t > 40.0 for t in totals)
    # Correct-none must dominate incorrect-none (ideal filtering keeps
    # the prophet's correct predictions out of the critic).
    correct = result.column("pct_correct_none")
    incorrect = result.column("pct_incorrect_none")
    assert all(c > i for c, i in zip(correct, incorrect))
