"""Tests for the experiment scaffolding and registry.

Functional experiments run here at a tiny scale — these tests check
plumbing (shapes, headers, registry wiring), not reproduction quality;
the benchmarks under ``benchmarks/`` check the scientific shapes.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import (
    ExperimentResult,
    average_series,
    hybrid_system,
    scaled_config,
    single_system,
)

TINY = 0.1  # 1600 branches: plumbing-check scale


class TestBase:
    def test_scaled_config(self):
        config = scaled_config(2.0)
        assert config.n_branches == 32_000
        assert config.warmup == 8_000

    def test_scaled_config_floors(self):
        config = scaled_config(0.01)
        assert config.n_branches >= 2_000
        assert config.warmup >= 500

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            scaled_config(0)

    def test_factories_build_fresh_systems(self):
        factory = hybrid_system("gshare", 2, "tagged-gshare", 2, 4)
        a, b = factory(), factory()
        assert a is not b
        assert a.future_bits == 4
        alone = single_system("gshare", 2)()
        assert alone.future_bits == 0

    def test_average_series(self):
        assert average_series([[1.0, 3.0], [3.0, 5.0]]) == [2.0, 4.0]

    def test_average_series_rejects_ragged(self):
        with pytest.raises(ValueError):
            average_series([[1.0], [1.0, 2.0]])

    def test_result_render_and_accessors(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            series={"s": ([0, 1], [1.0, 2.0])},
            notes="n",
        )
        text = result.render()
        assert "== x: t ==" in text and "s: 0=1.000, 1=2.000" in text
        assert result.column("b") == [2.5]
        assert result.series_values("s") == [1.0, 2.0]


class TestRegistry:
    def test_catalog_covers_every_table_and_figure(self):
        expected = {
            "table3", "table4", "figure5", "figure6a", "figure6b", "figure6c",
            "figure7a", "figure7b", "figure8", "figure9", "figure10", "headline",
            "ablation-oracle", "ablation-filtering", "ablation-insert-policy",
            "ablation-tage",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_table3_runs(self):
        result = run_experiment("table3")
        assert all(result.column("within_budget"))

    def test_figure5_plumbing(self):
        result = run_experiment(
            "figure5", scale=TINY, benchmarks=("swim",), future_bits=(0, 1)
        )
        assert result.rows[-1][0] == "AVG"
        assert "swim" in result.series
        assert len(result.series_values("AVG")) == 2

    def test_figure6_plumbing(self):
        result = run_experiment(
            "figure6c",
            scale=TINY,
            prophet_kbs=(4,),
            critic_kbs=(2,),
            future_bits=(None, 1),
            benchmarks=("swim",),
        )
        assert result.headers[2:] == ["no critic", "fb=1"]
        assert len(result.rows) == 1

    def test_figure6_rejects_unknown_subfigure(self):
        from repro.experiments import figure6

        with pytest.raises(KeyError):
            figure6.run("z")

    def test_figure7_plumbing(self):
        result = run_experiment("figure7a", scale=TINY, benchmarks=("swim",))
        assert len(result.rows) == 9  # 3 prophets x (alone + 2 critics)
        labels = result.column("configuration")
        assert "16KB gshare" in labels

    def test_figure7_rejects_other_budgets(self):
        from repro.experiments import figure7

        with pytest.raises(ValueError):
            figure7.run(total_kb=8)

    def test_figure8_plumbing(self):
        result = run_experiment("figure8", scale=TINY, future_bits=(1,), bench_name="swim")
        assert result.rows[0][0] == 1
        assert result.rows[0][-1] >= 0

    def test_table4_plumbing(self):
        result = run_experiment(
            "table4", scale=TINY, critic_kbs=(2,), future_bits=(1,), bench_name="swim"
        )
        row = result.rows[0]
        assert row[2] + row[3] == pytest.approx(row[4], abs=0.2)

    def test_ablation_insert_policy_plumbing(self):
        result = run_experiment("ablation-insert-policy", scale=TINY, bench_name="swim")
        assert {row[0] for row in result.rows} == {"final", "prophet"}
