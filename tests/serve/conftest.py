"""Fixtures for the sweep-daemon service tests.

Each test gets a private daemon on an ephemeral port with a fresh cache
directory — booted on a background thread via the same
:func:`repro.serve.start_daemon` harness the load profiler uses, so the
tests exercise the real asyncio server, not a mock transport.
"""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, SweepClient, start_daemon


@pytest.fixture
def daemon(tmp_path):
    """A running daemon (serial engine, fresh local cache); drained at exit."""
    handle = start_daemon(
        ServeConfig(port=0, jobs=1, cache_url=str(tmp_path / "cache"))
    )
    yield handle
    handle.stop()


@pytest.fixture
def client(daemon):
    return SweepClient(daemon.url)
