"""End-to-end service matrix: the daemon's whole contract over real HTTP.

Everything here drives a genuine daemon (asyncio server on an ephemeral
port) with the genuine :class:`~repro.serve.client.SweepClient`:

* a sweep submitted over HTTP is **bit-identical** to the same grid run
  locally through :func:`~repro.sim.sweep.run_sweep` — under both
  simulation backends (the ``kernel_backend`` matrix);
* duplicate concurrent jobs simulate each cell once — the rest come out
  of the shared cache;
* a full queue answers 429 (and counts the rejection), malformed
  configs answer 400 with the failing section named, unknown jobs 404;
* priority outranks FIFO order in the queue;
* SIGTERM drains: accepted jobs finish, new submissions get 503, the
  process exits 0.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ServeConfig, ServeError, SweepClient, start_daemon
from repro.sim import SimulationConfig
from repro.sim.cache import encode_result
from repro.sim.specs import SystemSpec
from repro.sim.sweep import run_sweep

SYSTEMS = {
    "gshare": {"kind": "single", "prophet": {"kind": "gshare", "budget_kb": 2}},
    "hybrid": {"kind": "hybrid",
               "prophet": {"kind": "gshare", "budget_kb": 2},
               "critic": {"kind": "tagged-gshare", "budget_kb": 2},
               "future_bits": 4},
}
BENCH_NAMES = ("swim", "facerec")
BRANCHES = 1200
WARMUP = 240


def _payload(**overrides):
    payload = {
        "systems": SYSTEMS,
        "benchmarks": ",".join(BENCH_NAMES),
        "branches": BRANCHES,
        "warmup": WARMUP,
    }
    payload.update(overrides)
    return payload


class TestSubmitStreamFetch:
    def test_http_sweep_bit_identical_to_run_sweep(self, client, kernel_backend):
        """submit → stream → fetch equals a local run_sweep, bit for bit."""
        job = client.submit_payload(_payload(backend=kernel_backend))
        events = list(client.events(job))
        assert events[-1]["event"] == "done"
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == len(SYSTEMS) * len(BENCH_NAMES)
        assert cell_events[-1]["done"] == len(cell_events)

        remote = client.sweep_result(job)
        specs = {label: SystemSpec.from_config(c) for label, c in SYSTEMS.items()}
        config = SimulationConfig(
            n_branches=BRANCHES, warmup=WARMUP, backend=kernel_backend
        )
        local = run_sweep(specs, {n: n for n in BENCH_NAMES}, config=config)
        for label in specs:
            for bench in BENCH_NAMES:
                assert encode_result(remote.get(label, bench)) == encode_result(
                    local.get(label, bench)
                ), f"{label} × {bench} differs from local run_sweep"

    def test_event_stream_replays_history_after_completion(self, client):
        """Subscribing after the job finished replays the whole history."""
        job = client.submit_payload(_payload())
        client.wait(job)
        replayed = list(client.events(job))
        assert [e["event"] for e in replayed][-1] == "done"
        assert sum(e["event"] == "cell" for e in replayed) == 4

    def test_duplicate_concurrent_jobs_simulate_once(self, daemon, client):
        """N identical jobs: one simulates, the rest are cache-served."""
        n_jobs = 4
        jobs: list[str] = []
        errors: list[BaseException] = []

        def submit() -> None:
            try:
                own = SweepClient(daemon.url)
                jobs.append(own.submit_payload(_payload()))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(n_jobs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        for job in jobs:
            assert client.wait(job, timeout=120)["state"] == "done"

        stats = client.stats()
        n_cells = len(SYSTEMS) * len(BENCH_NAMES)
        assert stats["cells_submitted"] == n_jobs * n_cells
        assert stats["cells_executed"] == n_cells  # each cell simulated ONCE
        assert stats["cells_from_cache"] == (n_jobs - 1) * n_cells
        # ...and every job's fetched results agree.
        first = client.sweep_result(jobs[0])
        for job in jobs[1:]:
            other = client.sweep_result(job)
            for label in SYSTEMS:
                for bench in BENCH_NAMES:
                    assert encode_result(other.get(label, bench)) == encode_result(
                        first.get(label, bench)
                    )


class TestQueueDiscipline:
    def test_queue_full_returns_429(self, tmp_path):
        """Submissions beyond max_queue bounce with 429 + Retry-After."""
        handle = start_daemon(ServeConfig(
            port=0, cache_url=str(tmp_path / "cache"), max_queue=2, paused=True,
        ))
        try:
            client = SweepClient(handle.url)
            accepted = [client.submit_payload(_payload()) for _ in range(2)]
            with pytest.raises(ServeError) as excinfo:
                client.submit_payload(_payload())
            assert excinfo.value.status == 429
            assert excinfo.value.payload["max_queue"] == 2
            assert client.stats()["jobs_rejected"] == 1
            # Releasing the runner drains the accepted jobs normally.
            handle.resume()
            for job in accepted:
                assert client.wait(job, timeout=120)["state"] == "done"
        finally:
            handle.stop()

    def test_priority_outranks_fifo(self, tmp_path):
        """A higher-priority job queued later runs first."""
        handle = start_daemon(ServeConfig(
            port=0, cache_url=str(tmp_path / "cache"), paused=True,
        ))
        try:
            client = SweepClient(handle.url)
            low = client.submit_payload(_payload(priority=0))
            high = client.submit_payload(_payload(
                priority=5, branches=BRANCHES + 1, warmup=WARMUP,
            ))
            handle.resume()
            client.wait(low, timeout=120)
            client.wait(high, timeout=120)
            # The high-priority job simulated its cells; the low-priority
            # job ran second (its own distinct cells also simulated) —
            # order is observable through the jobs' finish times.
            low_doc, high_doc = client.status(low), client.status(high)
            assert high_doc["state"] == low_doc["state"] == "done"
            # started later, finished first ⇒ ran first
            assert high_doc["seconds"] is not None
        finally:
            handle.stop()
        # Event history pins the order: high's running status must have
        # been emitted before low's.
        daemon = handle.daemon
        high_started = daemon.jobs[high].started
        low_started = daemon.jobs[low].started
        assert high_started < low_started


class TestRejections:
    @pytest.mark.parametrize(
        ("payload", "section", "fragment"),
        [
            ({"benchmarks": "swim"}, "systems", "needs 'systems'"),
            ({"systems": SYSTEMS}, "benchmarks", "needs 'benchmarks'"),
            (_payload(systems=[]), "systems", "no systems"),
            (_payload(systems={"x": {"kind": "nope", "prophet": "gshare"}}),
             "systems", "kind"),
            (_payload(benchmarks="no-such-bench"), "benchmarks",
             "unknown benchmark"),
            (_payload(branches=0), "branches", "positive"),
            (_payload(warmup=BRANCHES), "warmup", "measurement window"),
            (_payload(backend="cuda"), "backend", "unknown backend"),
            (_payload(bogus_key=1), None, "unknown job key"),
        ],
    )
    def test_malformed_config_rejected_with_section(
        self, client, payload, section, fragment
    ):
        """400 + the failing section named — the PR-5 error discipline."""
        with pytest.raises(ServeError) as excinfo:
            client.submit_payload(payload)
        assert excinfo.value.status == 400
        assert fragment in excinfo.value.payload["error"]
        assert excinfo.value.payload["detail"]["section"] == section
        # a rejected config must not occupy the queue
        assert client.stats()["jobs_submitted"] == 0

    def test_non_json_body_rejected(self, client):
        """Unparseable bytes get 400/section=body, not a connection drop."""
        import http.client as hc

        connection = hc.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request(
                "POST", "/jobs", body=b"{nope",
                headers={"Connection": "close"},
            )
            response = connection.getresponse()
            import json as json_module

            payload = json_module.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["detail"]["section"] == "body"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/no/such/route")
        assert excinfo.value.status == 404

    def test_healthz_and_stats_shape(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["api"] == 1
        stats = client.stats()
        assert stats["jobs_submitted"] == 0
        assert stats["queue_depth"] == 0
        assert stats["draining"] is False

    def test_failed_cell_yields_failed_job_with_cell_detail(self, tmp_path):
        """An engine-side failure surfaces the CellExecutionError fields.

        Config validation is eager, so the failure must strike *after*
        acceptance: a trace file that validates at submit time but is
        gone by execution time (the classic shared-filesystem hazard).
        """
        from repro.workloads import benchmark
        from repro.workloads.trace import record_trace

        trace_path = tmp_path / "swim.trace"
        record_trace(benchmark("swim"), 1500, trace_path)
        handle = start_daemon(ServeConfig(
            port=0, cache_url=str(tmp_path / "cache"), paused=True,
        ))
        try:
            client = SweepClient(handle.url)
            job = client.submit_payload(_payload(
                benchmarks=str(trace_path), branches=1200, warmup=240,
            ))
            trace_path.unlink()  # vanish between validation and execution
            handle.resume()
            doc = client.wait(job, timeout=120)
            assert doc["state"] == "failed"
            assert doc["error"]["error"] == "sweep cell failed"
            assert doc["error"]["benchmark"] == "swim"
            assert doc["error"]["system"] in SYSTEMS
            assert "cause" in doc["error"]
            assert client.stats()["jobs_failed"] == 1
            with pytest.raises(ServeError):
                client.results(job)
        finally:
            handle.stop()


class TestDrain:
    def test_sigterm_drains_inflight_jobs(self, tmp_path):
        """SIGTERM: the accepted job finishes, new submits get 503, exit 0."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-url", str(tmp_path / "cache")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on http://"), banner
            client = SweepClient(banner.split()[-1])
            # A job big enough to still be in flight when SIGTERM lands.
            job = client.submit_payload(_payload(branches=24_000, warmup=4_000))
            stream = client.events(job)
            assert next(
                e for e in stream if e.get("status") == "running"
            ), "job never started"
            proc.send_signal(signal.SIGTERM)
            # Draining daemon refuses new work but finishes the old.
            deadline = time.monotonic() + 30
            saw_503 = False
            while time.monotonic() < deadline:
                try:
                    client.submit_payload(_payload())
                except ServeError as exc:
                    assert exc.status == 503
                    saw_503 = True
                    break
                except OSError:
                    break  # daemon already exited: job drained before our POST
                time.sleep(0.05)
            final = [e for e in stream if e.get("event") == "done"]
            assert final and final[0]["status"] == "done"
            assert proc.wait(timeout=60) == 0
            assert saw_503 or proc.poll() == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_handle_drain_completes_queued_jobs(self, tmp_path):
        """initiate_drain finishes everything accepted before exiting."""
        handle = start_daemon(ServeConfig(
            port=0, cache_url=str(tmp_path / "cache"), paused=True,
        ))
        client = SweepClient(handle.url)
        jobs = [
            client.submit_payload(_payload()),
            client.submit_payload(_payload(branches=BRANCHES + 1)),
        ]
        handle.drain()  # releases the paused runner AND stops intake
        handle.stop(timeout=120)
        for job in jobs:
            assert handle.daemon.jobs[job].state == "done"
