"""SweepClient degradation: transport retries, 429 budgets, wait() resilience.

Pure unit tests — ``_request_once`` / ``events`` / ``status`` are stubbed
on the instance and ``_sleep`` records instead of sleeping, so every
schedule assertion runs in microseconds against the real retry logic.
"""

from __future__ import annotations

import pytest

from repro.serve.client import ServeError, SweepClient, _parse_retry_after


@pytest.fixture
def client():
    instance = SweepClient("http://127.0.0.1:1")  # never actually dialed
    instance.sleeps = []
    instance._sleep = instance.sleeps.append
    return instance


def _scripted(client, outcomes):
    """Stub ``_request_once`` to play ``outcomes`` (exception or document)."""
    calls = []

    def playback(method, path, payload=None):
        calls.append((method, path))
        outcome = outcomes[min(len(calls), len(outcomes)) - 1]
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    client._request_once = playback
    return calls


class TestTransportRetry:
    def test_connection_drops_are_retried_then_succeed(self, client):
        calls = _scripted(
            client,
            [ConnectionError("refused"), ConnectionError("reset"), {"job": "j1"}],
        )
        assert client.submit_payload({"systems": {}}) == "j1"
        assert len(calls) == 3
        # Deterministic backoff: the exact RetryPolicy schedule, token'd
        # by endpoint so concurrent clients desynchronise.
        assert client.sleeps == [
            client.retry.delay(0, "POST:/jobs"),
            client.retry.delay(1, "POST:/jobs"),
        ]

    def test_exhausted_retries_surface_the_last_error(self, client):
        calls = _scripted(client, [ConnectionError("daemon is gone")])
        with pytest.raises(ConnectionError, match="gone"):
            client.healthz()
        assert len(calls) == client.retry.attempts

    def test_http_errors_are_never_retried(self, client):
        calls = _scripted(client, [ServeError(400, {"error": "bad config"})])
        with pytest.raises(ServeError, match="bad config"):
            client.submit_payload({"systems": {}})
        assert len(calls) == 1  # the daemon answered; retrying is wrong
        assert client.sleeps == []


class TestRetryAfterBudget:
    def test_429_hint_within_budget_is_waited_out(self, client):
        full = ServeError(429, {"error": "queue full"}, retry_after=0.2)
        calls = _scripted(client, [full, full, {"job": "j2"}])
        job = client.submit_payload({"systems": {}}, retry_after_budget=1.0)
        assert job == "j2"
        assert len(calls) == 3
        assert client.sleeps == [0.2, 0.2]

    def test_hint_beyond_budget_surfaces_the_429(self, client):
        _scripted(client, [ServeError(429, {"error": "queue full"}, retry_after=5.0)])
        with pytest.raises(ServeError) as err:
            client.submit_payload({"systems": {}}, retry_after_budget=1.0)
        assert err.value.status == 429
        assert client.sleeps == []  # never waits longer than the budget

    def test_missing_hint_defaults_to_one_second(self, client):
        _scripted(client, [ServeError(429, {"error": "queue full"})])
        with pytest.raises(ServeError):
            client.submit_payload({"systems": {}}, retry_after_budget=0.5)
        assert client.sleeps == []

    def test_zero_budget_is_the_old_fail_fast_behaviour(self, client):
        _scripted(client, [ServeError(429, {"error": "queue full"}, retry_after=0.0)])
        with pytest.raises(ServeError):
            client.submit_payload({"systems": {}})


class TestParseRetryAfter:
    def test_parses_seconds(self):
        assert _parse_retry_after("2.5") == 2.5

    def test_garbage_and_absence_read_as_none(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("Wed, 21 Oct") is None

    def test_negative_clamps_to_zero(self):
        assert _parse_retry_after("-3") == 0.0


class TestWaitDegradation:
    def _cut_stream(self, client):
        def events(job_id):
            raise ConnectionError("stream cut")
            yield  # pragma: no cover - generator shape

        client.events = events

    def test_stream_drop_degrades_to_polling(self, client):
        self._cut_stream(client)
        statuses = [{"state": "running"}, {"state": "done"}]
        client.status = lambda job_id: statuses.pop(0)
        assert client.wait("j1", poll=0.01)["state"] == "done"
        assert client.sleeps == [0.01]  # one poll between the two statuses

    def test_unreachable_daemon_polls_with_growing_interval(self, client):
        self._cut_stream(client)
        outcomes = [
            ConnectionError("down"), ConnectionError("still down"),
            {"state": "done"},
        ]

        def status(job_id):
            outcome = outcomes.pop(0)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        client.status = status
        assert client.wait("j1", poll=0.01)["state"] == "done"
        assert client.sleeps == [0.02, 0.04]  # doubling, capped at 10x poll

    def test_backoff_interval_is_capped(self, client):
        self._cut_stream(client)
        outcomes = [ConnectionError("down")] * 6 + [{"state": "done"}]

        def status(job_id):
            outcome = outcomes.pop(0)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        client.status = status
        assert client.wait("j1", poll=0.01)["state"] == "done"
        assert max(client.sleeps) == pytest.approx(0.1)  # 10x poll ceiling

    def test_structured_errors_still_surface(self, client):
        self._cut_stream(client)

        def status(job_id):
            raise ServeError(404, {"error": "no such job"})

        client.status = status
        with pytest.raises(ServeError, match="no such job"):
            client.wait("j1", poll=0.01)

    def test_timeout_still_fires_while_degraded(self, client):
        self._cut_stream(client)
        client.status = lambda job_id: {"state": "running"}
        with pytest.raises(TimeoutError, match="still running"):
            client.wait("j1", poll=0.01, timeout=0.0)
