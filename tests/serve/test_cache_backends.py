"""The pluggable cache backends: local, HTTP, tiered, and URL parsing.

:class:`~repro.sim.cache.ResultCache` now puts one validated codec over
interchangeable byte stores. These tests pin each backend's contract —
atomicity, miss-vs-error semantics, write-through, degradation with a
dead peer — and the ``--cache-url`` grammar that assembles them. The
HTTP tier runs against a **live daemon's** ``/cache`` endpoints, not a
mock.
"""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, start_daemon
from repro.sim import ResultCache, SimulationConfig, run_cell
from repro.sim.cache import (
    CacheBackendError,
    HTTPBackend,
    LocalDirBackend,
    TieredBackend,
    cache_from_url,
    serialize_entry,
    stats_to_dict,
)
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec

CONFIG = SimulationConfig(n_branches=1200, warmup=240)


@pytest.fixture(scope="module")
def entry():
    """One canonical (key, bytes, result) triple for byte-level checks."""
    cell = SweepCell(
        "gshare", "swim", SystemSpec.single("gshare", 2),
        ProgramSpec(benchmark="swim"), CONFIG,
    )
    key = cell.content_hash()
    result = run_cell(cell)
    return key, serialize_entry(key, result), result


class TestLocalDirBackend:
    def test_roundtrip_and_layout(self, tmp_path, entry):
        key, data, _ = entry
        backend = LocalDirBackend(tmp_path)
        assert backend.get_bytes(key) is None
        backend.put_bytes(key, data)
        assert backend.get_bytes(key) == data
        # two-level fan-out, exactly as every cache since PR 1
        assert backend.path_for(key) == tmp_path / key[:2] / f"{key}.json"
        assert backend.path_for(key).read_bytes() == data
        assert len(backend) == 1

    def test_malformed_key_rejected_before_touching_disk(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        for bad in ("", "abc", "../../../../etc/passwd", "A" * 64, "g" * 64):
            with pytest.raises(CacheBackendError):
                backend.get_bytes(bad)
            with pytest.raises(CacheBackendError):
                backend.put_bytes(bad, b"x")

    def test_unreadable_entry_is_a_miss(self, tmp_path, entry):
        key, data, _ = entry
        backend = LocalDirBackend(tmp_path)
        backend.put_bytes(key, data)
        backend.path_for(key).unlink()
        assert backend.get_bytes(key) is None


class TestHTTPBackendAgainstLiveDaemon:
    @pytest.fixture
    def served(self, tmp_path):
        handle = start_daemon(
            ServeConfig(port=0, cache_url=str(tmp_path / "hub"))
        )
        yield handle
        handle.stop()

    def test_roundtrip_through_daemon(self, served, entry):
        key, data, _ = entry
        backend = HTTPBackend(served.url)
        assert backend.get_bytes(key) is None  # 404 → miss
        backend.put_bytes(key, data)
        assert backend.get_bytes(key) == data
        # ...and the daemon's local tier holds the same bytes on disk.
        assert served.daemon.cache.backend.get_bytes(key) == data

    def test_malformed_key_is_an_error_not_a_request(self, served):
        backend = HTTPBackend(served.url)
        with pytest.raises(CacheBackendError):
            backend.get_bytes("nope")

    def test_dead_peer_raises_backend_error(self, entry):
        key, data, _ = entry
        backend = HTTPBackend("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(CacheBackendError):
            backend.get_bytes(key)
        with pytest.raises(CacheBackendError):
            backend.put_bytes(key, data)

    def test_result_cache_treats_dead_peer_reads_as_miss(self, entry):
        """ResultCache.get over an unreachable remote: miss, not crash."""
        key, _, _ = entry
        cache = ResultCache(HTTPBackend("http://127.0.0.1:9", timeout=2.0))
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            HTTPBackend("ftp://host/x")
        with pytest.raises(ValueError):
            HTTPBackend("http://")


class TestTieredBackend:
    def test_remote_hit_writes_through_to_local(self, tmp_path, entry):
        key, data, _ = entry
        remote = LocalDirBackend(tmp_path / "remote")
        remote.put_bytes(key, data)
        local = LocalDirBackend(tmp_path / "local")
        tiered = TieredBackend(local, remote)
        assert tiered.get_bytes(key) == data
        # write-through: the next read never touches the remote tier
        assert local.get_bytes(key) == data

    def test_put_lands_in_both_tiers(self, tmp_path, entry):
        key, data, _ = entry
        local = LocalDirBackend(tmp_path / "local")
        remote = LocalDirBackend(tmp_path / "remote")
        TieredBackend(local, remote).put_bytes(key, data)
        assert local.get_bytes(key) == data
        assert remote.get_bytes(key) == data

    def test_dead_remote_degrades_never_fails(self, tmp_path, entry):
        key, data, result = entry
        tiered = TieredBackend(
            LocalDirBackend(tmp_path / "local"),
            HTTPBackend("http://127.0.0.1:9", timeout=2.0),
        )
        tiered.put_bytes(key, data)  # remote mirror fails silently
        assert tiered.get_bytes(key) == data
        # an absent key degrades to a miss (remote error swallowed)
        other = "0" * 64
        assert tiered.get_bytes(other) is None
        # the full ResultCache over the same stack still round-trips
        cache = ResultCache(tiered)
        fetched = cache.get(key)
        assert fetched is not None
        assert stats_to_dict(fetched) == stats_to_dict(result)


class TestCacheFromUrl:
    def test_plain_path_and_file_scheme(self, tmp_path):
        backend = cache_from_url(tmp_path / "a")
        assert isinstance(backend, LocalDirBackend)
        backend = cache_from_url(f"file://{tmp_path / 'b'}")
        assert isinstance(backend, LocalDirBackend)
        assert backend.location() == str(tmp_path / "b")

    def test_http_scheme(self):
        backend = cache_from_url("http://127.0.0.1:7777/prefix")
        assert isinstance(backend, HTTPBackend)
        assert backend.location() == "http://127.0.0.1:7777/prefix"

    def test_tiered_grammar(self, tmp_path):
        backend = cache_from_url(f"tiered:{tmp_path / 'l'}|http://127.0.0.1:7777")
        assert isinstance(backend, TieredBackend)
        assert isinstance(backend.local, LocalDirBackend)
        assert isinstance(backend.remote, HTTPBackend)

    @pytest.mark.parametrize("bad", ["tiered:", "tiered:/only-local",
                                     "tiered:|http://h", "tiered:/l|"])
    def test_bad_tiered_urls_rejected(self, bad):
        with pytest.raises(ValueError):
            cache_from_url(bad)

    def test_result_cache_from_url(self, tmp_path, entry):
        key, _, result = entry
        cache = ResultCache.from_url(str(tmp_path / "via-url"))
        cache.put(key, result)
        again = ResultCache.from_url(str(tmp_path / "via-url"))
        fetched = again.get(key)
        assert fetched is not None
        assert stats_to_dict(fetched) == stats_to_dict(result)
