"""Differential proof: :class:`LocalDirBackend` is the pre-refactor cache.

PR 7 factored the on-disk cache behind :class:`CacheBackend`; nothing on
disk was allowed to move. These tests hold that line three ways:

* a **frozen legacy writer** — the pre-backend ``ResultCache.put``,
  reproduced verbatim below — must produce byte-identical files to
  today's ``LocalDirBackend`` path for the same (key, result);
* a cache directory **written by the legacy code** must keep hitting
  through today's reader (the resume-after-upgrade path);
* the canonical cell's content hash **and** its serialized entry bytes
  are pinned to hard-coded digests (the PR-6 idiom): any drift in the
  spec hash, the codec field order, or the separators breaks the pin
  before it breaks a user's cache. The pins hold under **both**
  simulation backends — the backend is execution strategy, not content,
  so it must appear in neither the key nor the entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from repro.sim import ResultCache, SimulationConfig, run_cell
from repro.sim.cache import (
    CACHE_SCHEMA_VERSION,
    LocalDirBackend,
    encode_result,
    serialize_entry,
    stats_to_dict,
)
from repro.sim.specs import SPEC_FORMAT_VERSION, ProgramSpec, SweepCell, SystemSpec

#: The canonical cell: Table-3 16KB 2Bc-gskew baseline on swim, the
#: PR-6 pinning grid's shape. Pinned digests computed once at PR 7.
_PINNED_CONTENT_HASH = (
    "2cf2752bb12ccc2c86a54148ff0f3b7fdade2b1d1698ea7fb3661eb0a5ec3bff"
)
#: Re-pinned at PR 10: entries gained a trailing integrity ``checksum``
#: field (docs/ROBUSTNESS.md). Everything before it is byte-identical to
#: the PR-7 pin, which `test_backend_writes_the_legacy_bytes` proves.
_PINNED_ENTRY_SHA256 = (
    "a28699e9a54b50232dac834c5e2f41f539e557f4d234c8e7457dafccc5172385"
)


def _canonical_cell(backend: str) -> SweepCell:
    config = SimulationConfig(n_branches=1200, warmup=240, backend=backend)
    return SweepCell(
        "baseline", "swim", SystemSpec.single("2bc-gskew", 16),
        ProgramSpec(benchmark="swim"), config,
    )


def _legacy_put(root, key: str, result) -> None:
    """The pre-refactor ``ResultCache.put``, frozen verbatim (PR 6 tree)."""
    document = encode_result(result)
    document["key"] = key
    document["cache_schema"] = CACHE_SCHEMA_VERSION
    document["spec_format"] = SPEC_FORMAT_VERSION
    path = root / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TestByteIdenticalLayout:
    def test_backend_writes_the_legacy_bytes(self, tmp_path, kernel_backend):
        """Today's entry is the legacy entry plus a trailing checksum.

        PR 10 appended an integrity ``checksum`` as the *last* field, so
        everything a pre-PR-10 reader parses is byte-for-byte what the
        legacy writer produced; strip the one new field and the
        documents must re-serialize to identical bytes.
        """
        cell = _canonical_cell(kernel_backend)
        key = cell.content_hash()
        result = run_cell(cell)

        legacy_root = tmp_path / "legacy"
        legacy_root.mkdir()
        _legacy_put(legacy_root, key, result)

        cache = ResultCache(tmp_path / "today")
        cache.put(key, result)

        legacy_bytes = (legacy_root / key[:2] / f"{key}.json").read_bytes()
        today_bytes = cache.path_for(key).read_bytes()
        # the canonical serialization is exactly what hits the disk...
        assert today_bytes == serialize_entry(key, result)
        # ...and minus the appended checksum it IS the legacy entry
        document = json.loads(today_bytes)
        assert list(document)[-1] == "checksum"
        document.pop("checksum")
        stripped = json.dumps(document, separators=(",", ":")).encode("utf-8")
        assert stripped == legacy_bytes

    def test_legacy_directory_keeps_hitting(self, tmp_path, kernel_backend):
        """A cache dir written by the pre-refactor code resumes cleanly."""
        cell = _canonical_cell(kernel_backend)
        key = cell.content_hash()
        result = run_cell(cell)
        _legacy_put(tmp_path, key, result)

        cache = ResultCache(tmp_path)  # today's reader over yesterday's dir
        fetched = cache.get(key)
        assert fetched is not None
        assert cache.hits == 1
        assert stats_to_dict(fetched) == stats_to_dict(result)

    def test_layout_is_unchanged(self, tmp_path):
        """Two-level fan-out, ``.json`` suffix, root auto-created."""
        backend = LocalDirBackend(tmp_path / "fresh")
        assert (tmp_path / "fresh").is_dir()
        key = "ab" + "0" * 62
        assert backend.path_for(key) == (
            tmp_path / "fresh" / "ab" / f"{key}.json"
        )


class TestPinnedDigests:
    """PR-6-style content pins: drift fails here before it bites users."""

    def test_content_hash_is_pinned(self, kernel_backend):
        cell = _canonical_cell(kernel_backend)
        assert cell.content_hash() == _PINNED_CONTENT_HASH, (
            "the canonical cell's content hash moved — existing caches "
            "would silently stop hitting; if intentional, bump "
            "SPEC_FORMAT_VERSION and re-pin"
        )

    def test_entry_bytes_are_pinned(self, kernel_backend):
        """sha256 of the on-disk entry: codec + separators + field order."""
        cell = _canonical_cell(kernel_backend)
        result = run_cell(cell)
        data = serialize_entry(cell.content_hash(), result)
        assert hashlib.sha256(data).hexdigest() == _PINNED_ENTRY_SHA256, (
            "the serialized cache entry's bytes moved — either the result "
            "changed (simulation regression!) or the codec drifted; if "
            "intentional, bump CACHE_SCHEMA_VERSION and re-pin"
        )

    def test_entry_document_fields_in_order(self, kernel_backend):
        """The JSON document's insertion order is part of the format."""
        cell = _canonical_cell(kernel_backend)
        data = serialize_entry(cell.content_hash(), run_cell(cell))
        document = json.loads(data)
        assert list(document) == ["type", "payload", "key",
                                  "cache_schema", "spec_format", "checksum"]
        assert document["cache_schema"] == CACHE_SCHEMA_VERSION
        assert document["spec_format"] == SPEC_FORMAT_VERSION
