"""Frozen pre-overhaul sweep execution layer (the PR-4-era engine).

This is a faithful copy of ``repro.sim.execution`` as it stood *before*
the sweep-scale overhaul: every cell rebuilds its program and system
from scratch, the process pool is spun up and torn down inside every
``map_cells`` call, results come back as one ordered batch (cache writes
only after the whole batch returns), and duplicate cells are stamped via
``copy.deepcopy``.

It exists for the same reason ``tests/reference_kernel.py`` does: the
sweep-throughput benchmark (``tools/profile_sweep.py``) times the
current engine against this frozen one on identical grids, and CI gates
on the speedup *ratio* — which is stable across machines, unlike
absolute cells/sec. It deliberately reuses the current simulator kernel
and spec layer: what is frozen here is the **execution layer**
(scheduling, pooling, build management), so the ratio isolates exactly
the overhaul under test.

Do not "fix" or optimise this module; it is a measurement baseline.
"""

from __future__ import annotations

import copy
import os
from concurrent import futures
from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.cache import ResultCache
from repro.sim.driver import simulate
from repro.sim.specs import MODE_TIMING, SweepCell


def reference_run_cell(cell: SweepCell):
    """The pre-overhaul work unit: rebuild everything, every cell."""
    program = cell.program.build()
    system = cell.system.build()
    if cell.mode == MODE_TIMING:
        from repro.pipeline.machine import TimedMachine

        result = TimedMachine(program, system).run(
            cell.config.n_branches, warmup=cell.config.warmup
        )
    else:
        result = simulate(program, system, cell.config)
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


def _stamp(result, cell: SweepCell):
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


class ReferenceSerialExecutor:
    """Pre-overhaul serial path: one fresh build per cell, ordered batch."""

    jobs = 1

    def map_cells(self, cells: Sequence[SweepCell]) -> list:
        return [reference_run_cell(cell) for cell in cells]


class ReferenceProcessPoolExecutor:
    """Pre-overhaul pool: spawned and torn down inside every call."""

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs or os.cpu_count() or 1

    def map_cells(self, cells: Sequence[SweepCell]) -> list:
        if len(cells) <= 1 or self.jobs == 1:
            return ReferenceSerialExecutor().map_cells(cells)
        workers = min(self.jobs, len(cells))
        chunksize = max(1, len(cells) // (workers * 4))
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(reference_run_cell, cells, chunksize=chunksize))


@dataclass
class ReferenceSweepEngine:
    """Pre-overhaul engine: batch results, end-of-batch cache write-back."""

    executor: ReferenceSerialExecutor | ReferenceProcessPoolExecutor = field(
        default_factory=ReferenceSerialExecutor
    )
    cache: ResultCache | None = None

    def run_cells(self, cells: Sequence[SweepCell]) -> list:
        results: dict[int, object] = {}
        pending: list[tuple[int, str, SweepCell]] = []
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, str]] = []
        for index, cell in enumerate(cells):
            key = cell.content_hash()
            if key in first_index:
                duplicates.append((index, key))
                continue
            first_index[key] = index
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[index] = _stamp(cached, cell)
            else:
                pending.append((index, key, cell))
        if pending:
            fresh = self.executor.map_cells([cell for _, _, cell in pending])
            for (index, key, _cell), result in zip(pending, fresh):
                if self.cache is not None:
                    self.cache.put(key, result)
                results[index] = result
        for index, key in duplicates:
            twin = results[first_index[key]]
            results[index] = _stamp(copy.deepcopy(twin), cells[index])
        return [results[index] for index in range(len(cells))]
