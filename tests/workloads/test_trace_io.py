"""Tests for the on-disk trace format: round trips, truncation, corruption."""

import json
import random

import pytest

from repro.workloads.program import BasicBlock, BlockKind, Program
from repro.workloads.behaviors import PatternBehavior
from repro.workloads.trace import BranchRecord, ReplayCursor, record_trace
from repro.workloads.trace_io import (
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    pack_record,
    read_trace_header,
    verify_trace,
)

STRUCTURE = {
    "name": "t",
    "seed": 3,
    "entry": 0,
    "watched": [],
    "blocks": [[0, 0x40, 2, "cond", 0, 0]],
}


def random_records(seed: int, count: int) -> list[BranchRecord]:
    rng = random.Random(seed)
    return [
        BranchRecord(
            pc=rng.randrange(1 << 48), taken=rng.random() < 0.6, uops=rng.randint(1, 40)
        )
        for _ in range(count)
    ]


def write_trace(path, records, structure=STRUCTURE, **kwargs):
    with TraceWriter(path, structure, **kwargs) as writer:
        for record in records:
            writer.write(record)
    return writer.header


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_write_read_identity(self, tmp_path, seed):
        """Property: write -> read yields identical records and counters."""
        records = random_records(seed, count=50 + seed * 173)
        header = write_trace(tmp_path / "t.trace", records)
        with TraceReader(tmp_path / "t.trace") as reader:
            assert reader.header == header
            assert reader.structure() == STRUCTURE
            assert list(reader.records()) == records
        assert header.record_count == len(records)
        assert header.total_uops == sum(r.uops for r in records)
        assert header.taken_count == sum(r.taken for r in records)

    def test_equal_content_gives_equal_digest_and_bytes(self, tmp_path):
        records = random_records(7, 200)
        first = write_trace(tmp_path / "a.trace", records)
        second = write_trace(tmp_path / "b.trace", records)
        assert first.digest == second.digest
        assert (tmp_path / "a.trace").read_bytes() == (tmp_path / "b.trace").read_bytes()

    def test_any_record_flip_changes_digest(self, tmp_path):
        records = random_records(8, 64)
        base = write_trace(tmp_path / "a.trace", records)
        flipped = list(records)
        flipped[31] = BranchRecord(
            pc=records[31].pc, taken=not records[31].taken, uops=records[31].uops
        )
        assert write_trace(tmp_path / "b.trace", flipped).digest != base.digest

    def test_header_read_is_cheap_and_complete(self, tmp_path):
        header = write_trace(
            tmp_path / "t.trace", random_records(1, 30), source={"origin": "unit"}
        )
        loaded = read_trace_header(tmp_path / "t.trace")
        assert loaded == header
        assert loaded.source == {"origin": "unit"}
        assert 0.0 <= loaded.taken_rate <= 1.0

    def test_verify_accepts_intact_file(self, tmp_path):
        write_trace(tmp_path / "t.trace", random_records(2, 40))
        assert verify_trace(tmp_path / "t.trace").record_count == 40

    def test_empty_trace_round_trips(self, tmp_path):
        header = write_trace(tmp_path / "t.trace", [])
        assert header.record_count == 0
        assert list(TraceReader(tmp_path / "t.trace")) == []
        verify_trace(tmp_path / "t.trace")


class TestWriter:
    def test_abort_leaves_no_file(self, tmp_path):
        path = tmp_path / "t.trace"
        with pytest.raises(RuntimeError):
            with TraceWriter(path, STRUCTURE) as writer:
                writer.write(BranchRecord(pc=1, taken=True, uops=1))
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_write_after_close_rejected(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.trace", STRUCTURE)
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write(BranchRecord(pc=1, taken=True, uops=1))

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(ValueError, match="64-bit"):
            pack_record(BranchRecord(pc=1 << 64, taken=True, uops=1))
        with pytest.raises(ValueError, match="32-bit"):
            pack_record(BranchRecord(pc=1, taken=True, uops=1 << 32))


def rewrite_header(path, **overrides):
    """Tamper with the uncompressed header line of a trace file."""
    raw = path.read_bytes()
    line, body = raw.split(b"\n", 1)
    payload = json.loads(line[len(TRACE_MAGIC) + 1 :])
    payload.update(overrides)
    new_line = TRACE_MAGIC + b" " + json.dumps(payload).encode() + b"\n"
    path.write_bytes(new_line + body)


class TestMalformedFiles:
    """Every malformed input raises TraceFormatError with useful context."""

    @pytest.fixture
    def trace_path(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, random_records(11, 120))
        return path

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.trace"
        path.write_bytes(b"NOTATRACE {}\n")
        with pytest.raises(TraceFormatError, match="bad magic") as excinfo:
            read_trace_header(path)
        assert excinfo.value.path == str(path)

    def test_unsupported_version_names_versions(self, trace_path):
        rewrite_header(trace_path, version=TRACE_FORMAT_VERSION + 1)
        with pytest.raises(TraceFormatError, match="version") as excinfo:
            read_trace_header(trace_path)
        assert excinfo.value.version == TRACE_FORMAT_VERSION + 1
        assert excinfo.value.expected == TRACE_FORMAT_VERSION

    def test_malformed_header_json(self, trace_path):
        raw = trace_path.read_bytes()
        _, body = raw.split(b"\n", 1)
        trace_path.write_bytes(TRACE_MAGIC + b' {"version": 1}\n' + body)
        with pytest.raises(TraceFormatError, match="header json is malformed"):
            read_trace_header(trace_path)

    def test_truncated_file_reports_offset(self, trace_path):
        raw = trace_path.read_bytes()
        trace_path.write_bytes(raw[:-60])
        with pytest.raises(TraceFormatError) as excinfo:
            verify_trace(trace_path)
        assert "truncat" in str(excinfo.value) or "ends early" in str(excinfo.value)
        assert excinfo.value.path == str(trace_path)

    def test_inflated_record_count_reports_expected_vs_actual(self, trace_path):
        rewrite_header(trace_path, record_count=125)
        with pytest.raises(TraceFormatError, match="ends early") as excinfo:
            verify_trace(trace_path)
        assert excinfo.value.offset == 120
        assert "125 records" in str(excinfo.value.expected)

    def test_deflated_record_count_reports_trailing_data(self, trace_path):
        rewrite_header(trace_path, record_count=100)
        with pytest.raises(TraceFormatError, match="trailing data"):
            verify_trace(trace_path)

    def test_digest_mismatch_detected(self, trace_path):
        rewrite_header(trace_path, digest="0" * 64)
        with pytest.raises(TraceFormatError, match="digest mismatch") as excinfo:
            verify_trace(trace_path)
        assert excinfo.value.expected == "0" * 64

    def test_corrupt_compressed_stream(self, trace_path):
        raw = bytearray(trace_path.read_bytes())
        # Flip bits deep inside the gzip payload (past header + gzip magic).
        for offset in range(len(raw) - 200, len(raw) - 190):
            raw[offset] ^= 0xFF
        trace_path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError):
            verify_trace(trace_path)

    def test_not_gzip_after_header(self, tmp_path):
        path = tmp_path / "t.trace"
        header = {
            "version": 1, "name": "x", "record_count": 1,
            "total_uops": 1, "taken_count": 1, "digest": "0" * 64, "source": None,
        }
        path.write_bytes(TRACE_MAGIC + b" " + json.dumps(header).encode() + b"\nGARBAGE")
        with pytest.raises(TraceFormatError):
            verify_trace(path)


class TestReplayCursor:
    def make_program(self) -> Program:
        block = BasicBlock(
            0, 0x40, 2, BlockKind.COND, taken_target=0, fallthrough=0,
            behavior=PatternBehavior("TTN"),
        )
        return Program(name="tiny", blocks=[block], entry=0, seed=1)

    def test_streams_and_rewinds(self, tmp_path):
        path = tmp_path / "tiny.trace"
        record_trace(self.make_program(), 9, path)
        cursor = ReplayCursor(path)
        first_pass = [cursor.next_record().taken for _ in range(9)]
        cursor.rewind()
        second_pass = [cursor.next_record().taken for _ in range(9)]
        assert first_pass == second_pass == [True, True, False] * 3
        cursor.close()

    def test_exhaustion_is_descriptive(self, tmp_path):
        path = tmp_path / "tiny.trace"
        record_trace(self.make_program(), 4, path)
        cursor = ReplayCursor(path)
        for _ in range(4):
            cursor.next_record()
        with pytest.raises(TraceFormatError, match="exhausted") as excinfo:
            cursor.next_record()
        assert excinfo.value.offset == 4
        cursor.close()
