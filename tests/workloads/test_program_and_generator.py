"""Tests for the CFG program model, generator, suites and traces."""

import pytest

from repro.workloads.generator import ProgramGenerator, WorkloadProfile, generate_program
from repro.workloads.program import BasicBlock, BlockKind, Program
from repro.workloads.suites import (
    BENCHMARKS,
    FIGURE5_BENCHMARKS,
    SUITES,
    benchmark,
    benchmark_names,
    suite_benchmarks,
    suite_names,
)
from repro.workloads.trace import BranchRecord, BranchTrace
from repro.workloads.behaviors import PatternBehavior


def tiny_program() -> Program:
    """A hand-built two-block infinite loop with one conditional."""
    blocks = [
        BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1, fallthrough=1,
                   behavior=PatternBehavior("TN")),
        BasicBlock(1, 0x1010, 6, BlockKind.JUMP, taken_target=0),
    ]
    return Program(name="tiny", blocks=blocks, entry=0)


class TestProgramModel:
    def test_block_lookup(self):
        program = tiny_program()
        assert program.block(1).uops == 6

    def test_validate_catches_dangling_edge(self):
        blocks = [BasicBlock(0, 0x1000, 4, BlockKind.JUMP, taken_target=99)]
        program = Program(name="bad", blocks=blocks, entry=0)
        with pytest.raises(ValueError):
            program.validate()

    def test_validate_catches_cond_without_behavior(self):
        blocks = [BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=0, fallthrough=0)]
        program = Program(name="bad", blocks=blocks, entry=0)
        with pytest.raises(ValueError):
            program.validate()

    def test_duplicate_block_ids_rejected(self):
        blocks = [
            BasicBlock(0, 0x1000, 4, BlockKind.JUMP, taken_target=0),
            BasicBlock(0, 0x2000, 4, BlockKind.JUMP, taken_target=0),
        ]
        with pytest.raises(ValueError):
            Program(name="dup", blocks=blocks, entry=0)

    def test_missing_entry_rejected(self):
        blocks = [BasicBlock(0, 0x1000, 4, BlockKind.JUMP, taken_target=0)]
        with pytest.raises(ValueError):
            Program(name="bad", blocks=blocks, entry=5)

    def test_census_and_sites(self):
        program = tiny_program()
        assert program.static_conditional_branches == 1
        assert program.behavior_census() == {"pattern": 1}
        assert program.conditional_sites() == [0x1000]


class TestGenerator:
    def test_generates_valid_program(self):
        program = generate_program(WorkloadProfile(name="t", seed=3, static_branch_target=120))
        program.validate()
        assert program.static_conditional_branches > 40

    def test_deterministic_for_same_seed(self):
        a = generate_program(WorkloadProfile(name="t", seed=9, static_branch_target=80))
        b = generate_program(WorkloadProfile(name="t", seed=9, static_branch_target=80))
        assert [bl.pc for bl in a.blocks] == [bl.pc for bl in b.blocks]
        assert a.behavior_census() == b.behavior_census()

    def test_different_seeds_differ(self):
        a = generate_program(WorkloadProfile(name="t", seed=1, static_branch_target=80))
        b = generate_program(WorkloadProfile(name="t", seed=2, static_branch_target=80))
        assert [bl.pc for bl in a.blocks] != [bl.pc for bl in b.blocks]

    def test_branch_target_roughly_met(self):
        target = 300
        program = generate_program(WorkloadProfile(name="t", seed=5, static_branch_target=target))
        conds = program.static_conditional_branches
        assert 0.5 * target <= conds <= 2.0 * target

    def test_behavior_mix_respected(self):
        profile = WorkloadProfile(
            name="t", seed=4, static_branch_target=400,
            behavior_mix={"loop": 1.0},  # loops only
        )
        program = generate_program(profile)
        census = program.behavior_census()
        # Everything should be loops (caller boost is off when absent).
        assert set(census) == {"loop"}

    def test_rejects_empty_mix(self):
        profile = WorkloadProfile(name="t", seed=4, behavior_mix={"loop": 0.0})
        with pytest.raises(ValueError):
            ProgramGenerator(profile).generate()

    def test_pcs_are_unique_and_increasing(self):
        program = generate_program(WorkloadProfile(name="t", seed=8, static_branch_target=100))
        pcs = [b.pc for b in program.blocks]
        assert len(set(pcs)) == len(pcs)
        assert pcs == sorted(pcs)


class TestSuites:
    def test_all_benchmarks_build(self):
        # Building every profile would be slow; spot-check one per suite.
        for members in SUITES.values():
            program = benchmark(members[0])
            program.validate()
            assert program.name == members[0]

    def test_every_member_is_a_known_benchmark(self):
        for members in SUITES.values():
            for name in members:
                assert name in BENCHMARKS

    def test_figure5_benchmarks_known(self):
        assert set(FIGURE5_BENCHMARKS) <= set(BENCHMARKS)

    def test_seven_suites(self):
        assert len(suite_names()) == 7

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark("doom")

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            suite_benchmarks("GAMES")

    def test_cached_benchmark_is_reset(self):
        a = benchmark("swim", fresh=False)
        b = benchmark("swim", fresh=False)
        assert a is b

    def test_benchmark_names_stable(self):
        assert benchmark_names() == list(BENCHMARKS)


class TestTrace:
    def make_trace(self):
        trace = BranchTrace("t")
        for i, taken in enumerate([True, False, True, True]):
            trace.append(BranchRecord(pc=0x100 + 4 * i, taken=taken, uops=10))
        return trace

    def test_basic_stats(self):
        trace = self.make_trace()
        assert len(trace) == 4
        assert trace.total_uops == 40
        assert trace.taken_rate == 0.75
        assert trace.distinct_sites() == 4

    def test_window(self):
        trace = self.make_trace()
        assert [r.taken for r in trace.window(1, 2)] == [False, True]
        with pytest.raises(ValueError):
            trace.window(-1, 2)

    def test_future_bits_layout(self):
        trace = self.make_trace()
        # Outcomes T F T T; future of index 0 with 3 bits: own outcome at
        # bit 2, next at bit 1, next-next at bit 0 -> T,F,T = 0b101.
        assert trace.future_bits(0, 3) == 0b101

    def test_future_bits_at_end_pad_zero(self):
        trace = self.make_trace()
        # Index 3 (T) with 3 bits: T,_,_ -> 0b100.
        assert trace.future_bits(3, 3) == 0b100
