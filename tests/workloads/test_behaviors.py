"""Tests for branch behaviour models."""

import pytest

from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    CallerCorrelatedBehavior,
    CorrelatedBehavior,
    ExecutionContext,
    LoopBehavior,
    ModalBehavior,
    PathCorrelatedBehavior,
    PatternBehavior,
)


def fresh_ctx(seed=7) -> ExecutionContext:
    return ExecutionContext(seed=seed)


def resolve_n(behavior, site, ctx, n):
    outs = []
    for _ in range(n):
        taken = behavior.resolve(site, ctx)
        ctx.record_outcome(site, taken)
        outs.append(taken)
    return outs


class TestLoopBehavior:
    def test_fixed_trip(self):
        ctx = fresh_ctx()
        outs = resolve_n(LoopBehavior(trip_count=4), 0x100, ctx, 12)
        assert outs == [True, True, True, False] * 3

    def test_trip_of_two(self):
        ctx = fresh_ctx()
        outs = resolve_n(LoopBehavior(trip_count=2), 0x100, ctx, 6)
        assert outs == [True, False] * 3

    def test_rejects_trip_below_two(self):
        with pytest.raises(ValueError):
            LoopBehavior(trip_count=1)

    def test_variable_trips_stay_in_choices(self):
        ctx = fresh_ctx()
        loop = LoopBehavior(trip_choices=(3, 5), persistence=2)
        outs = resolve_n(loop, 0x100, ctx, 200)
        # Reconstruct trip lengths from the outcome stream.
        trips, run = [], 0
        for taken in outs:
            run += 1
            if not taken:
                trips.append(run)
                run = 0
        assert set(trips) <= {3, 5}

    def test_persistence_makes_phases(self):
        ctx = fresh_ctx()
        loop = LoopBehavior(trip_choices=(3, 5), persistence=50)
        outs = resolve_n(loop, 0x100, ctx, 600)
        trips, run = [], 0
        for taken in outs:
            run += 1
            if not taken:
                trips.append(run)
                run = 0
        # Within the first persistence window the trip is constant.
        assert len(set(trips[:40])) == 1

    def test_reset_restarts_instance_zero(self):
        ctx = fresh_ctx()
        loop = LoopBehavior(trip_choices=(3, 5), persistence=4)
        first = resolve_n(loop, 0x100, ctx, 30)
        loop.reset()
        second = resolve_n(loop, 0x100, fresh_ctx(), 30)
        assert first == second


class TestPatternBehavior:
    def test_cycles(self):
        ctx = fresh_ctx()
        outs = resolve_n(PatternBehavior("TTN"), 0x200, ctx, 9)
        assert outs == [True, True, False] * 3

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            PatternBehavior("TXN")
        with pytest.raises(ValueError):
            PatternBehavior("")

    def test_case_insensitive(self):
        ctx = fresh_ctx()
        assert resolve_n(PatternBehavior("tn"), 0x200, ctx, 2) == [True, False]


class TestBiasedRandomBehavior:
    def test_bias_converges(self):
        ctx = fresh_ctx()
        outs = resolve_n(BiasedRandomBehavior(0.8), 0x300, ctx, 5000)
        rate = sum(outs) / len(outs)
        assert abs(rate - 0.8) < 0.03

    def test_deterministic_across_runs(self):
        a = resolve_n(BiasedRandomBehavior(0.5), 0x300, fresh_ctx(), 100)
        b = resolve_n(BiasedRandomBehavior(0.5), 0x300, fresh_ctx(), 100)
        assert a == b

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            BiasedRandomBehavior(1.5)


class TestCorrelatedBehavior:
    def test_follows_single_source(self):
        ctx = fresh_ctx()
        behavior = CorrelatedBehavior((0xAAA,))
        ctx.record_outcome(0xAAA, True)
        assert behavior.resolve(0xBBB, ctx) is True
        ctx.record_outcome(0xAAA, False)
        assert behavior.resolve(0xBBB, ctx) is False

    def test_invert(self):
        ctx = fresh_ctx()
        behavior = CorrelatedBehavior((0xAAA,), invert=True)
        ctx.record_outcome(0xAAA, True)
        assert behavior.resolve(0xBBB, ctx) is False

    def test_xor_of_two_sources(self):
        ctx = fresh_ctx()
        behavior = CorrelatedBehavior((0xAAA, 0xCCC))
        ctx.record_outcome(0xAAA, True)
        ctx.record_outcome(0xCCC, True)
        assert behavior.resolve(0xBBB, ctx) is False  # T xor T
        ctx.record_outcome(0xCCC, False)
        assert behavior.resolve(0xBBB, ctx) is True  # T xor N

    def test_unrecorded_source_defaults_not_taken(self):
        ctx = fresh_ctx()
        assert CorrelatedBehavior((0xAAA,)).resolve(0xBBB, ctx) is False

    def test_rejects_empty_sources(self):
        with pytest.raises(ValueError):
            CorrelatedBehavior(())


class TestPathCorrelatedBehavior:
    def test_taken_iff_watched_block_recent(self):
        ctx = fresh_ctx()
        ctx.watched_blocks.add(42)
        behavior = PathCorrelatedBehavior(42, window=3)
        # Block 42 never executed: not taken.
        assert behavior.resolve(0x400, ctx) is False
        ctx.record_block(42)
        assert behavior.resolve(0x400, ctx) is True
        # Age it out of the window.
        for block in (1, 2, 3, 4):
            ctx.record_block(block)
        assert behavior.resolve(0x400, ctx) is False

    def test_invert(self):
        ctx = fresh_ctx()
        ctx.watched_blocks.add(42)
        assert PathCorrelatedBehavior(42, window=3, invert=True).resolve(0x400, ctx) is True


class TestCallerCorrelatedBehavior:
    def test_direction_fixed_per_caller(self):
        ctx = fresh_ctx()
        behavior = CallerCorrelatedBehavior()
        ctx.push_caller(11)
        first = [behavior.resolve(0x500, ctx) for _ in range(5)]
        assert len(set(first)) == 1  # deterministic per caller

    def test_different_callers_can_differ(self):
        ctx = fresh_ctx()
        behavior = CallerCorrelatedBehavior()
        directions = set()
        for caller in range(40):
            ctx.caller_stack = [caller]
            directions.add(behavior.resolve(0x500, ctx))
        assert directions == {True, False}

    def test_depth_two_uses_grand_caller(self):
        ctx = fresh_ctx()
        behavior = CallerCorrelatedBehavior(depth=2)
        ctx.caller_stack = [1, 7]
        a = behavior.resolve(0x500, ctx)
        ctx.caller_stack = [2, 7]  # same caller, different grand-caller
        b_values = {behavior.resolve(0x500 + 4 * k, ctx) for k in range(8)}
        # Across several sites the grand-caller must influence outcomes.
        ctx.caller_stack = [1, 7]
        a_values = {behavior.resolve(0x500 + 4 * k, ctx) for k in range(8)}
        assert isinstance(a, bool)
        assert a_values or b_values  # both populated

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CallerCorrelatedBehavior(noise=2.0)
        with pytest.raises(ValueError):
            CallerCorrelatedBehavior(depth=0)


class TestModalBehavior:
    def test_switches_children_by_phase(self):
        ctx = fresh_ctx()
        modal = ModalBehavior((PatternBehavior("T"), PatternBehavior("N")), period=5)
        outs = resolve_n(modal, 0x600, ctx, 20)
        assert outs[:5] == [True] * 5
        assert outs[5:10] == [False] * 5
        assert outs[10:15] == [True] * 5

    def test_rejects_single_child(self):
        with pytest.raises(ValueError):
            ModalBehavior((PatternBehavior("T"),), period=5)


class TestExecutionContext:
    def test_occurrences_count(self):
        ctx = fresh_ctx()
        ctx.record_outcome(0x1, True)
        ctx.record_outcome(0x1, False)
        assert ctx.occurrence_of(0x1) == 2
        assert ctx.occurrence_of(0x2) == 0

    def test_caller_stack(self):
        ctx = fresh_ctx()
        assert ctx.current_caller() == 0
        ctx.push_caller(5)
        ctx.push_caller(9)
        assert ctx.current_caller() == 9
        ctx.pop_caller()
        assert ctx.current_caller() == 5
        ctx.pop_caller()
        ctx.pop_caller()  # underflow is a no-op
        assert ctx.current_caller() == 0
