"""Tests for RAS, BTB, FTQ, executor and speculative walker."""

import pytest

from repro.engine import (
    ArchitecturalExecutor,
    BranchTargetBuffer,
    FetchTargetQueue,
    FtqEntry,
    ReturnAddressStack,
    SpeculativeWalker,
)
from repro.workloads.behaviors import PatternBehavior
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.program import BasicBlock, BlockKind, Program


class TestReturnAddressStack:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(7)
        snap = ras.snapshot()
        ras.push(8)
        ras.restore(snap)
        assert ras.pop() == 7
        assert len(ras) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestBranchTargetBuffer:
    def test_miss_then_allocate_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert not btb.lookup(0x4000)
        btb.allocate(0x4000)
        assert btb.lookup(0x4000)

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        # PCs mapping to the same set differ by sets << 2.
        pcs = [0x1000 + i * (4 << 2) for i in range(3)]
        for pc in pcs:
            btb.allocate(pc)
        # First allocated should have been evicted.
        assert not btb.lookup(pcs[0])
        assert btb.lookup(pcs[1])
        assert btb.lookup(pcs[2])

    def test_occupancy(self):
        btb = BranchTargetBuffer(8, 2)
        assert btb.occupancy() == 0.0
        btb.allocate(0x4000)
        assert btb.occupancy() == 1 / 8

    def test_stats(self):
        btb = BranchTargetBuffer(8, 2)
        btb.lookup(0x4000)
        btb.allocate(0x4000)
        btb.lookup(0x4000)
        assert btb.stats.lookups == 2
        assert btb.stats.hits == 1
        assert btb.stats.hit_rate == 0.5

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)


class TestFetchTargetQueue:
    def entry(self, seq):
        return FtqEntry(pc=0x100 + seq, prediction=True, uops=5, seq=seq)

    def test_insert_and_consume_fifo(self):
        ftq = FetchTargetQueue(4)
        for seq in range(3):
            ftq.insert(self.entry(seq))
        assert ftq.consume().seq == 0
        assert ftq.consume().seq == 1

    def test_overflow_raises(self):
        ftq = FetchTargetQueue(1)
        ftq.insert(self.entry(0))
        assert ftq.full
        with pytest.raises(RuntimeError):
            ftq.insert(self.entry(1))

    def test_consume_empty_counts(self):
        ftq = FetchTargetQueue(2)
        assert ftq.consume() is None
        assert ftq.stats.empty_on_demand == 1

    def test_criticise_and_flush_tail(self):
        ftq = FetchTargetQueue(8)
        for seq in range(5):
            ftq.insert(self.entry(seq))
        ftq.mark_criticised(0)
        ftq.mark_criticised(1)
        dropped = ftq.flush_after(1)
        assert [e.seq for e in dropped] == [2, 3, 4]
        assert len(ftq) == 2
        assert ftq.stats.entries_flushed == 3

    def test_oldest_uncriticised(self):
        ftq = FetchTargetQueue(8)
        for seq in range(3):
            ftq.insert(self.entry(seq))
        ftq.mark_criticised(0)
        assert ftq.oldest_uncriticised().seq == 1

    def test_flush_all(self):
        ftq = FetchTargetQueue(8)
        for seq in range(3):
            ftq.insert(self.entry(seq))
        assert ftq.flush_all() == 3
        assert len(ftq) == 0

    def test_mark_unknown_seq_raises(self):
        ftq = FetchTargetQueue(2)
        with pytest.raises(KeyError):
            ftq.mark_criticised(99)


def two_branch_program() -> Program:
    """entry: cond A (pattern TN) -> {B, C}; both jump back to A.

    Block A: taken -> B, not-taken -> C.
    """
    blocks = [
        BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1, fallthrough=2,
                   behavior=PatternBehavior("TN")),
        BasicBlock(1, 0x1010, 3, BlockKind.JUMP, taken_target=0),
        BasicBlock(2, 0x1020, 5, BlockKind.JUMP, taken_target=0),
    ]
    return Program(name="two", blocks=blocks, entry=0)


class TestArchitecturalExecutor:
    def test_resolves_pattern_in_order(self):
        executor = ArchitecturalExecutor(two_branch_program())
        outcomes = [executor.next_branch().taken for _ in range(6)]
        assert outcomes == [True, False] * 3

    def test_uop_accounting(self):
        executor = ArchitecturalExecutor(two_branch_program())
        first = executor.next_branch()
        assert first.uops == 4  # block A only
        second = executor.next_branch()
        assert second.uops == 3 + 4  # block B then A

    def test_committed_uops_accumulate(self):
        executor = ArchitecturalExecutor(two_branch_program())
        executor.run_branches(4)
        assert executor.committed_uops > 0
        assert executor.resolved_branches == 4

    def test_calls_and_returns(self):
        # main: call f -> cond -> loop back; f: return immediately.
        blocks = [
            BasicBlock(0, 0x1000, 2, BlockKind.CALL, taken_target=3, fallthrough=1),
            BasicBlock(1, 0x1008, 4, BlockKind.COND, taken_target=2, fallthrough=2,
                       behavior=PatternBehavior("T")),
            BasicBlock(2, 0x1010, 1, BlockKind.JUMP, taken_target=0),
            BasicBlock(3, 0x2000, 7, BlockKind.RETURN),
        ]
        program = Program(name="call", blocks=blocks, entry=0)
        executor = ArchitecturalExecutor(program)
        first = executor.next_branch()
        assert first.pc == 0x1008
        assert first.uops == 2 + 7 + 4  # call block + callee + cond block


class TestSpeculativeWalker:
    def test_follows_predictions_not_outcomes(self):
        walker = SpeculativeWalker(two_branch_program())
        fetched = walker.next_branch()
        assert fetched.pc == 0x1000
        walker.advance(False)  # predict not-taken regardless of behaviour
        second = walker.next_branch()
        assert second.uops == 5 + 4  # went through block C

    def test_snapshot_restore_rewinds(self):
        walker = SpeculativeWalker(two_branch_program())
        walker.next_branch()
        snap = walker.snapshot()
        walker.advance(True)
        walker.next_branch()
        walker.restore(snap)
        walker.advance(False)  # re-steer down the other edge
        refetched = walker.next_branch()
        assert refetched.uops == 5 + 4

    def test_double_advance_rejected(self):
        walker = SpeculativeWalker(two_branch_program())
        walker.next_branch()
        walker.advance(True)
        with pytest.raises(RuntimeError):
            walker.advance(True)

    def test_next_branch_requires_advance(self):
        walker = SpeculativeWalker(two_branch_program())
        walker.next_branch()
        with pytest.raises(RuntimeError):
            walker.next_branch()

    def test_fetched_uops_accumulate(self):
        walker = SpeculativeWalker(two_branch_program())
        walker.next_branch()
        walker.advance(True)
        walker.next_branch()
        assert walker.fetched_uops == 4 + 3 + 4

    def test_walker_and_executor_agree_on_committed_path(self):
        """Driving the walker with actual outcomes must reproduce the
        executor's block traversal exactly — on any generated program."""
        program = generate_program(WorkloadProfile(name="t", seed=12, static_branch_target=60))
        executor = ArchitecturalExecutor(program)
        walker = SpeculativeWalker(program)
        for _ in range(2000):
            fetched = walker.next_branch()
            resolved = executor.next_branch()
            assert fetched.pc == resolved.pc
            assert fetched.uops == resolved.uops
            walker.advance(resolved.taken)
