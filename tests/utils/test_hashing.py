"""Tests for hash and skewing functions."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import mask
from repro.utils.hashing import index_hash, mix64, skew_f, skew_h, skew_hinv, tag_hash


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_diffusion(self):
        # Single-bit input changes should flip roughly half the output bits.
        a = mix64(0)
        b = mix64(1)
        assert 16 <= bin(a ^ b).count("1") <= 48

    def test_output_fits_64_bits(self):
        assert mix64(mask(64)) <= mask(64)


class TestIndexAndTagHash:
    def test_index_within_range(self):
        for pc in range(0x1000, 0x1100, 4):
            assert index_hash(pc, 0x5A5A, 10, 16) <= mask(10)

    def test_tag_within_range(self):
        for pc in range(0x1000, 0x1100, 4):
            assert tag_hash(pc, 0x5A5A, 8, 16) <= mask(8)

    def test_history_affects_index(self):
        pc = 0x4004
        indices = {index_hash(pc, h, 10, 16) for h in range(64)}
        assert len(indices) > 1

    def test_index_and_tag_decorrelated(self):
        """Contexts that collide in the index should mostly differ in tag."""
        buckets: dict[int, set[int]] = {}
        for pc in range(0x4000, 0x4000 + 4 * 64, 4):
            for hist in range(0, 256, 7):
                idx = index_hash(pc, hist, 6, 18)
                tag = tag_hash(pc, hist, 8, 18)
                buckets.setdefault(idx, set()).add(tag)
        # Every index bucket should see many distinct tags.
        assert all(len(tags) > 4 for tags in buckets.values())

    @given(st.integers(min_value=0, max_value=mask(30)), st.integers(min_value=0, max_value=mask(18)))
    def test_hashes_deterministic(self, pc, hist):
        assert index_hash(pc, hist, 10, 18) == index_hash(pc, hist, 10, 18)
        assert tag_hash(pc, hist, 9, 18) == tag_hash(pc, hist, 9, 18)


class TestSkewing:
    @given(st.integers(min_value=0, max_value=mask(12)))
    def test_h_and_hinv_are_inverses(self, value):
        assert skew_hinv(skew_h(value, 12), 12) == value
        assert skew_h(skew_hinv(value, 12), 12) == value

    @given(st.integers(min_value=0, max_value=mask(12)))
    def test_h_output_fits_width(self, value):
        assert skew_h(value, 12) <= mask(12)

    def test_h_bijective_exhaustively(self):
        n = 10
        images = {skew_h(v, n) for v in range(1 << n)}
        assert len(images) == 1 << n

    def test_banks_disagree_on_collisions(self):
        """e-gskew property: pairs colliding in one bank rarely collide in others."""
        n = 8
        pairs = []
        seen: dict[int, tuple[int, int]] = {}
        for v1 in range(0, 256, 3):
            for v2 in range(0, 256, 5):
                idx0 = skew_f(0, v1, v2, n)
                if idx0 in seen and seen[idx0] != (v1, v2):
                    pairs.append((seen[idx0], (v1, v2)))
                seen[idx0] = (v1, v2)
        both_collide = 0
        for (a1, a2), (b1, b2) in pairs[:200]:
            if skew_f(1, a1, a2, n) == skew_f(1, b1, b2, n):
                both_collide += 1
        assert both_collide < len(pairs[:200]) * 0.25

    def test_bank_out_of_range(self):
        import pytest

        with pytest.raises(ValueError):
            skew_f(3, 1, 2, 8)

    def test_distribution_is_roughly_uniform(self):
        n = 6
        counts = Counter(skew_f(0, v1, v2, n) for v1 in range(64) for v2 in range(64))
        expected = 64 * 64 / (1 << n)
        assert all(abs(c - expected) / expected < 0.5 for c in counts.values())
