"""Unit and property tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_select,
    bits_to_signed_pm1,
    fold_bits,
    mask,
    popcount,
    reverse_bits,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_negative_width(self):
        assert mask(-3) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(4) == 0b1111
        assert mask(8) == 0xFF

    def test_wide_mask(self):
        assert mask(64) == (1 << 64) - 1


class TestBitSelect:
    def test_low_bit(self):
        assert bit_select(0b1010, 0) == 0
        assert bit_select(0b1010, 1) == 1

    def test_high_bit(self):
        assert bit_select(1 << 40, 40) == 1
        assert bit_select(1 << 40, 39) == 0


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_known_values(self):
        assert popcount(0b1011) == 3
        assert popcount(mask(17)) == 17

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestFoldBits:
    def test_identity_when_narrow(self):
        assert fold_bits(0b101, width=3, out_width=8) == 0b101

    def test_simple_fold(self):
        # 8 bits folded to 4: low nibble XOR high nibble.
        assert fold_bits(0xAB, 8, 4) == (0xA ^ 0xB)

    def test_zero_out_width(self):
        assert fold_bits(0xFFFF, 16, 0) == 0

    @given(st.integers(min_value=0, max_value=mask(48)), st.integers(min_value=1, max_value=16))
    def test_result_fits_out_width(self, value, out_width):
        assert fold_bits(value, 48, out_width) <= mask(out_width)

    @given(st.integers(min_value=0, max_value=mask(32)))
    def test_fold_is_deterministic(self, value):
        assert fold_bits(value, 32, 10) == fold_bits(value, 32, 10)


class TestReverseBits:
    def test_known(self):
        assert reverse_bits(0b001, 3) == 0b100

    @given(st.integers(min_value=0, max_value=mask(16)))
    def test_involution(self, value):
        assert reverse_bits(reverse_bits(value, 16), 16) == value


class TestBitsToSignedPm1:
    def test_all_zero_maps_to_minus_one(self):
        assert bits_to_signed_pm1(0, 4) == [-1, -1, -1, -1]

    def test_mixed(self):
        assert bits_to_signed_pm1(0b0101, 4) == [1, -1, 1, -1]

    @given(st.integers(min_value=0, max_value=mask(20)))
    def test_values_are_pm1(self, value):
        assert set(bits_to_signed_pm1(value, 20)) <= {-1, 1}
