"""Tests for the deterministic RNG utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import DeterministicRng, site_hash_outcome


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(3)
        for _ in range(1000):
            assert 0.0 <= rng.random() < 1.0

    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = {rng.randint(2, 5) for _ in range(200)}
        assert values == {2, 3, 4, 5}

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).randint(5, 2)

    def test_choice(self):
        rng = DeterministicRng(11)
        items = ["a", "b", "c"]
        assert {rng.choice(items) for _ in range(100)} == set(items)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(5)
        items = list(range(30))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely for 30 items

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(1)
        picks = {rng.weighted_choice(["x", "y"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"x"}

    def test_weighted_choice_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_choice(["x"], [0.0])

    def test_fork_streams_are_independent(self):
        parent = DeterministicRng(9)
        child1 = parent.fork(1)
        child2 = parent.fork(2)
        assert [child1.next_u64() for _ in range(5)] != [child2.next_u64() for _ in range(5)]

    def test_roughly_uniform_mean(self):
        rng = DeterministicRng(42)
        mean = sum(rng.random() for _ in range(10_000)) / 10_000
        assert abs(mean - 0.5) < 0.02


class TestSiteHashOutcome:
    def test_deterministic_per_occurrence(self):
        assert site_hash_outcome(1, 0x400, 17, 0.7) == site_hash_outcome(1, 0x400, 17, 0.7)

    def test_bias_respected(self):
        taken = sum(site_hash_outcome(3, 0x999, i, 0.8) for i in range(20_000))
        assert abs(taken / 20_000 - 0.8) < 0.02

    def test_extreme_biases(self):
        assert all(site_hash_outcome(0, 1, i, 1.0) for i in range(100))
        assert not any(site_hash_outcome(0, 1, i, 0.0) for i in range(100))

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=10_000))
    def test_order_independent(self, site, occurrence):
        """The draw must not depend on evaluation order (wrong-path safety)."""
        first = site_hash_outcome(5, site, occurrence, 0.5)
        # Interleave other draws, then repeat.
        site_hash_outcome(5, site + 1, occurrence, 0.5)
        site_hash_outcome(5, site, occurrence + 1, 0.5)
        assert site_hash_outcome(5, site, occurrence, 0.5) == first
