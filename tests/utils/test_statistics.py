"""Tests for statistics helpers."""

import math

import pytest

from repro.utils.statistics import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percent_reduction,
    ratio_per_kilo,
    running_mean,
    speedup_percent,
)


class TestMeans:
    def test_arithmetic_empty(self):
        assert arithmetic_mean([]) == 0.0

    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0

    def test_geometric(self):
        assert math.isclose(geometric_mean([1, 4]), 2.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_harmonic(self):
        assert math.isclose(harmonic_mean([1, 1]), 1.0)
        assert math.isclose(harmonic_mean([2, 6]), 3.0)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([2, -1])

    def test_mean_ordering(self):
        values = [1.0, 2.0, 9.0]
        assert harmonic_mean(values) <= geometric_mean(values) <= arithmetic_mean(values)


class TestPercentMetrics:
    def test_percent_reduction(self):
        assert math.isclose(percent_reduction(2.0, 1.0), 50.0)

    def test_percent_reduction_zero_baseline(self):
        assert percent_reduction(0.0, 1.0) == 0.0

    def test_percent_reduction_negative_when_worse(self):
        assert percent_reduction(1.0, 2.0) == -100.0

    def test_speedup(self):
        assert math.isclose(speedup_percent(1.0, 1.078), 7.8)

    def test_speedup_zero_baseline(self):
        assert speedup_percent(0.0, 5.0) == 0.0


class TestRatioPerKilo:
    def test_paper_shape(self):
        # 418 uops per flush is ~2.39 flushes per Kuop.
        assert math.isclose(ratio_per_kilo(1, 418), 1000.0 / 418)

    def test_zero_denominator(self):
        assert ratio_per_kilo(10, 0) == 0.0


class TestRunningMean:
    def test_running(self):
        assert running_mean([1.0, 3.0, 5.0]) == [1.0, 2.0, 3.0]

    def test_empty(self):
        assert running_mean([]) == []
