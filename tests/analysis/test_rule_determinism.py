"""REP001 self-tests: bad fires, good passes, suppression honored."""

from __future__ import annotations

from repro.analysis.rules import RULES_BY_CODE
from repro.analysis.runner import lint_project

RULE = RULES_BY_CODE["REP001"]


def _findings(project):
    return list(RULE.check(project))


class TestFires:
    def test_module_level_random(self, make_project):
        project = make_project({
            "src/repro/workloads/gen.py": (
                "import random\n"
                "def pick():\n"
                "    return random.random()\n"
            ),
        })
        (f,) = _findings(project)
        assert f.rule == "REP001" and f.line == 3
        assert "random.random" in f.message

    def test_unseeded_random_instance(self, make_project):
        project = make_project({
            "src/repro/workloads/gen.py": (
                "import random\n"
                "rng = random.Random()\n"
            ),
        })
        (f,) = _findings(project)
        assert "without a seed" in f.message

    def test_numpy_global_rng_through_alias(self, make_project):
        project = make_project({
            "src/repro/sim/kern.py": (
                "import numpy as np\n"
                "def roll():\n"
                "    return np.random.randint(8)\n"
            ),
        })
        (f,) = _findings(project)
        assert "numpy" in f.message

    def test_unseeded_default_rng(self, make_project):
        project = make_project({
            "src/repro/sim/kern.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng()\n"
            ),
        })
        (f,) = _findings(project)
        assert "default_rng" in f.message

    def test_os_urandom(self, make_project):
        project = make_project({
            "src/repro/utils/ids.py": (
                "import os\n"
                "token = os.urandom(8)\n"
            ),
        })
        (f,) = _findings(project)
        assert "os.urandom" in f.message

    def test_wall_clock_in_sim_scope(self, make_project):
        project = make_project({
            "src/repro/sim/driver2.py": (
                "import time\n"
                "def run():\n"
                "    return time.perf_counter()\n"
            ),
        })
        (f,) = _findings(project)
        assert "wall-clock" in f.message

    def test_unsorted_json_dumps_in_hash_feeder(self, make_project):
        project = make_project({
            "src/repro/sim/spec2.py": (
                "import json\n"
                "def content_hash(payload):\n"
                "    return json.dumps(payload)\n"
            ),
        })
        (f,) = _findings(project)
        assert "sort_keys" in f.message

    def test_set_iteration_in_hash_feeder(self, make_project):
        project = make_project({
            "src/repro/sim/spec2.py": (
                "def describe(items):\n"
                "    return [x for x in set(items)]\n"
            ),
        })
        (f,) = _findings(project)
        assert "salted" in f.message


class TestPasses:
    def test_seeded_generators_pass(self, make_project):
        project = make_project({
            "src/repro/workloads/gen.py": (
                "import random\n"
                "import numpy as np\n"
                "def make(seed):\n"
                "    return random.Random(seed), np.random.default_rng(seed)\n"
            ),
        })
        assert _findings(project) == []

    def test_wall_clock_outside_sim_scope_passes(self, make_project):
        # serve/ measures request latency legitimately.
        project = make_project({
            "src/repro/serve/metrics.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.perf_counter()\n"
            ),
        })
        assert _findings(project) == []

    def test_sorted_json_and_sorted_sets_pass(self, make_project):
        project = make_project({
            "src/repro/sim/spec2.py": (
                "import json\n"
                "def content_hash(payload, tags):\n"
                "    ordered = sorted(set(tags))\n"
                "    return json.dumps(payload, sort_keys=True), ordered\n"
            ),
        })
        assert _findings(project) == []

    def test_analysis_package_itself_exempt(self, make_project):
        # The linter hashes finding fingerprints; it must not flag itself.
        project = make_project({
            "src/repro/analysis/x.py": (
                "import random\n"
                "v = random.random()\n"
            ),
        })
        assert _findings(project) == []


class TestSuppression:
    def test_inline_suppression_honored(self, make_project):
        project = make_project({
            "src/repro/workloads/gen.py": (
                "import random\n"
                "v = random.random()  # repro-lint: disable=REP001\n"
            ),
        })
        report = lint_project(project, [RULE])
        assert report.new == []
        assert len(report.suppressed) == 1
        assert report.exit_code == 0

    def test_wrong_code_does_not_suppress(self, make_project):
        project = make_project({
            "src/repro/workloads/gen.py": (
                "import random\n"
                "v = random.random()  # repro-lint: disable=REP002\n"
            ),
        })
        report = lint_project(project, [RULE])
        assert len(report.new) == 1
        assert report.exit_code == 1
