"""REP005 self-tests: blocking-call detection inside coroutines."""

from __future__ import annotations

from repro.analysis.rules import RULES_BY_CODE
from repro.analysis.runner import lint_project

RULE = RULES_BY_CODE["REP005"]


def _findings(project):
    return list(RULE.check(project))


class TestFires:
    def test_time_sleep_in_coroutine(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "import time\n"
                "async def handle():\n"
                "    time.sleep(1)\n"
            ),
        })
        (f,) = _findings(project)
        assert "time.sleep" in f.message and "handle" in f.message

    def test_open_builtin_in_coroutine(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "async def handle(path):\n"
                "    with open(path) as fh:\n"
                "        return fh.read()\n"
            ),
        })
        findings = _findings(project)
        assert any("open()" in f.message for f in findings)

    def test_cache_backend_bytes_op(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "async def handle(self, key):\n"
                "    return self.backend.get_bytes(key)\n"
            ),
        })
        (f,) = _findings(project)
        assert ".get_bytes()" in f.message

    def test_cache_get_on_cache_receiver(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "async def handle(cache, key):\n"
                "    return cache.get(key)\n"
            ),
        })
        (f,) = _findings(project)
        assert "cache.get()" in f.message

    def test_blocking_helper_called_from_coroutine(self, make_project):
        # The PR 7 daemon's original /cache handler shape: the coroutine
        # itself looks clean, the sync helper it calls does the I/O.
        project = make_project({
            "src/repro/serve/d.py": (
                "class Daemon:\n"
                "    def _do_put(self, key, body):\n"
                "        self.backend.put_bytes(key, body)\n"
                "    async def route(self, key, body):\n"
                "        self._do_put(key, body)\n"
            ),
        })
        (f,) = _findings(project)
        assert "_do_put" in f.message and "await-free" in f.message


class TestPasses:
    def test_executor_thunk_excluded(self, make_project):
        # Nested defs/lambdas are exactly how work goes off-loop.
        project = make_project({
            "src/repro/serve/d.py": (
                "import asyncio\n"
                "async def handle(self, key):\n"
                "    loop = asyncio.get_running_loop()\n"
                "    return await loop.run_in_executor(\n"
                "        None, lambda: self.backend.get_bytes(key))\n"
            ),
        })
        assert _findings(project) == []

    def test_run_in_executor_by_reference(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "import asyncio\n"
                "async def handle(self, key):\n"
                "    loop = asyncio.get_running_loop()\n"
                "    return await loop.run_in_executor(\n"
                "        None, self.backend.get_bytes, key)\n"
            ),
        })
        assert _findings(project) == []

    def test_sync_functions_not_judged(self, make_project):
        project = make_project({
            "src/repro/sim/io.py": (
                "def save(path, blob):\n"
                "    with open(path, 'wb') as fh:\n"
                "        fh.write(blob)\n"
            ),
        })
        assert _findings(project) == []

    def test_non_cache_receiver_get_passes(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "async def handle(params, key):\n"
                "    return params.get(key)\n"
            ),
        })
        assert _findings(project) == []


class TestSuppression:
    def test_inline_suppression_honored(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "import time\n"
                "async def handle():\n"
                "    time.sleep(1)  # repro-lint: disable=REP005\n"
            ),
        })
        report = lint_project(project, [RULE])
        assert report.new == [] and len(report.suppressed) == 1

    def test_file_suppression_honored(self, make_project):
        project = make_project({
            "src/repro/serve/d.py": (
                "# repro-lint: disable-file=REP005\n"
                "import time\n"
                "async def handle():\n"
                "    time.sleep(1)\n"
            ),
        })
        report = lint_project(project, [RULE])
        assert report.new == [] and len(report.suppressed) == 1
