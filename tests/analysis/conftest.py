"""Shared fixtures for the repro-lint self-tests.

The rule tests build throwaway project trees under ``tmp_path`` that
mirror the real ``src/repro/...`` layout (path-scoped rules key off the
relative path), run the rule pack over them, and assert on the findings.
``make_project`` is the one helper everything uses.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.framework import Project
from repro.analysis.runner import collect_project


@pytest.fixture
def make_project(tmp_path):
    """Materialise ``{rel_path: source}`` as files and collect them.

    Returns the :class:`Project`; call it several times in one test for
    independent trees (each gets its own subdirectory).
    """
    counter = {"n": 0}

    def _make(files: dict[str, str]) -> Project:
        counter["n"] += 1
        root = tmp_path / f"proj{counter['n']}"
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        return collect_project(root)

    return _make


REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def repo_project():
    """The real repository tree, collected once per session."""
    return collect_project(REPO_ROOT)
