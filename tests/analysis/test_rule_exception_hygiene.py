"""REP006 self-tests: broad catches must re-raise or degrade."""

from __future__ import annotations

from repro.analysis.rules import RULES_BY_CODE
from repro.analysis.runner import lint_project

RULE = RULES_BY_CODE["REP006"]


def _findings(project):
    return list(RULE.check(project))


class TestFires:
    def test_silent_except_exception(self, make_project):
        project = make_project({
            "src/repro/workloads/t.py": (
                "def close(handle):\n"
                "    try:\n"
                "        handle.close()\n"
                "    except Exception:\n"
                "        pass\n"
            ),
        })
        (f,) = _findings(project)
        assert "`except Exception`" in f.message and f.line == 4

    def test_bare_except(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except:\n"
                "        return None\n"
            ),
        })
        (f,) = _findings(project)
        assert "bare `except:`" in f.message

    def test_base_exception_in_tuple(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except (ValueError, BaseException):\n"
                "        return None\n"
            ),
        })
        (f,) = _findings(project)
        assert "BaseException" in f.message

    def test_logging_alone_is_not_enough(self, make_project):
        # print/log without degrade() leaves no machine-readable record
        # and still swallows KeyboardInterrupt under BaseException.
        project = make_project({
            "src/repro/serve/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except BaseException as exc:\n"
                "        print('oops', exc)\n"
            ),
        })
        assert len(_findings(project)) == 1

    def test_suppress_exception_flagged(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "import contextlib\n"
                "def f():\n"
                "    with contextlib.suppress(Exception):\n"
                "        g()\n"
            ),
        })
        (f,) = _findings(project)
        assert "suppress(Exception)" in f.message

    def test_raise_in_nested_def_does_not_count(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except Exception:\n"
                "        def oops():\n"
                "            raise ValueError('later')\n"
                "        return oops\n"
            ),
        })
        assert len(_findings(project)) == 1


class TestPasses:
    def test_wrap_and_reraise(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f(cell):\n"
                "    try:\n"
                "        g()\n"
                "    except Exception as exc:\n"
                "        raise RuntimeError(cell) from exc\n"
            ),
        })
        assert _findings(project) == []

    def test_cleanup_then_bare_reraise(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f(tmp):\n"
                "    try:\n"
                "        g()\n"
                "    except BaseException:\n"
                "        cleanup(tmp)\n"
                "        raise\n"
            ),
        })
        assert _findings(project) == []

    def test_degrade_from_faults_handling(self, make_project):
        project = make_project({
            "src/repro/serve/x.py": (
                "from repro.faults.handling import degrade\n"
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except Exception as exc:\n"
                "        degrade(exc, 'running g')\n"
            ),
        })
        assert _findings(project) == []

    def test_degrade_via_package_alias(self, make_project):
        project = make_project({
            "src/repro/serve/x.py": (
                "from repro.faults import degrade\n"
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except BaseException as exc:\n"
                "        degrade(exc, 'daemon thread', reraise=())\n"
            ),
        })
        assert _findings(project) == []

    def test_narrow_handlers_ignored(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except (OSError, ValueError):\n"
                "        return None\n"
            ),
        })
        assert _findings(project) == []

    def test_suppress_narrow_type_ignored(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "import contextlib\n"
                "def f():\n"
                "    with contextlib.suppress(FileNotFoundError):\n"
                "        g()\n"
            ),
        })
        assert _findings(project) == []

    def test_out_of_scope_files_ignored(self, make_project):
        project = make_project({
            "tools/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except Exception:\n"
                "        pass\n"
            ),
        })
        assert _findings(project) == []


class TestSuppression:
    def test_inline_suppression_honored(self, make_project):
        project = make_project({
            "src/repro/sim/x.py": (
                "def f():\n"
                "    try:\n"
                "        g()\n"
                "    except Exception:  # repro-lint: disable=REP006\n"
                "        pass\n"
            ),
        })
        report = lint_project(project, [RULE])
        assert report.new == [] and len(report.suppressed) == 1


class TestRepoIsClean:
    def test_no_findings_in_this_repo(self, repo_project):
        # The hardening sweep (PR 10) narrowed or degraded every broad
        # handler in src/repro; new ones must account for themselves.
        assert [f.message for f in _findings(repo_project)] == []
