"""Framework-layer self-tests: suppressions, fingerprints, baseline."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.framework import (
    Baseline,
    Finding,
    SourceFile,
    import_aliases,
    resolve_call,
    validate_rule,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE


class TestSuppressions:
    def test_line_suppression_single_code(self, tmp_path):
        sf = SourceFile.from_text(
            tmp_path, "m.py", "x = 1  # repro-lint: disable=REP001\n"
        )
        assert sf.is_suppressed("REP001", 1)
        assert not sf.is_suppressed("REP002", 1)
        assert not sf.is_suppressed("REP001", 2)

    def test_line_suppression_multiple_codes(self, tmp_path):
        sf = SourceFile.from_text(
            tmp_path, "m.py", "x = 1  # repro-lint: disable=REP001, REP005\n"
        )
        assert sf.is_suppressed("REP001", 1)
        assert sf.is_suppressed("REP005", 1)
        assert not sf.is_suppressed("REP003", 1)

    def test_bare_disable_silences_every_rule(self, tmp_path):
        sf = SourceFile.from_text(tmp_path, "m.py", "x = 1  # repro-lint: disable\n")
        assert sf.is_suppressed("REP001", 1)
        assert sf.is_suppressed("REP004", 1)

    def test_file_suppression(self, tmp_path):
        text = "# repro-lint: disable-file=REP002\nx = 1\ny = 2\n"
        sf = SourceFile.from_text(tmp_path, "m.py", text)
        assert sf.is_suppressed("REP002", 3)
        assert not sf.is_suppressed("REP001", 3)

    def test_unrelated_comments_do_not_suppress(self, tmp_path):
        sf = SourceFile.from_text(tmp_path, "m.py", "x = 1  # totally normal\n")
        assert not sf.is_suppressed("REP001", 1)


class TestFindingFingerprint:
    def test_stable_across_line_drift(self):
        a = Finding("REP001", "src/m.py", 10, "msg", snippet="random.random()")
        b = Finding("REP001", "src/m.py", 99, "msg", snippet="random.random()")
        assert a.fingerprint() == b.fingerprint()

    def test_changes_with_snippet_rule_or_path(self):
        base = Finding("REP001", "src/m.py", 1, "msg", snippet="x")
        assert base.fingerprint() != Finding(
            "REP002", "src/m.py", 1, "msg", snippet="x"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            "REP001", "src/n.py", 1, "msg", snippet="x"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            "REP001", "src/m.py", 1, "msg", snippet="y"
        ).fingerprint()


class TestBaseline:
    def _finding(self, snippet="x = 1", line=1):
        return Finding("REP001", "src/m.py", line, "msg", snippet=snippet)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self._finding(), self._finding("y = 2", line=5)]
        Baseline.save(path, findings)
        loaded = Baseline.load(path)
        new, baselined, stale = loaded.partition(findings)
        assert new == []
        assert len(baselined) == 2
        assert stale == []

    def test_multiset_matching(self, tmp_path):
        # Two identical offending lines need two baseline entries; a
        # third occurrence is new.
        path = tmp_path / "baseline.json"
        Baseline.save(path, [self._finding(), self._finding()])
        loaded = Baseline.load(path)
        new, baselined, _ = loaded.partition(
            [self._finding(line=1), self._finding(line=2), self._finding(line=3)]
        )
        assert len(baselined) == 2
        assert len(new) == 1

    def test_stale_entries_surface(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.save(path, [self._finding("gone()")])
        loaded = Baseline.load(path)
        new, baselined, stale = loaded.partition([])
        assert new == [] and baselined == []
        assert len(stale) == 1
        assert stale[0][0] == "REP001"

    def test_missing_file_is_empty(self, tmp_path):
        loaded = Baseline.load(tmp_path / "nope.json")
        new, baselined, stale = loaded.partition([self._finding()])
        assert len(new) == 1 and baselined == [] and stale == []

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 999, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


class TestImportResolution:
    def _aliases(self, src):
        return import_aliases(ast.parse(src))

    def test_plain_and_aliased_imports(self):
        aliases = self._aliases("import numpy as np\nimport time\n")
        assert aliases["np"] == "numpy"
        assert aliases["time"] == "time"

    def test_from_imports(self):
        aliases = self._aliases("from os import urandom\nfrom a.b import c as d\n")
        assert aliases["urandom"] == "os.urandom"
        assert aliases["d"] == "a.b.c"

    def test_resolve_call_through_alias(self):
        tree = ast.parse("import numpy as np\nnp.random.randint(3)\n")
        call = tree.body[1].value
        assert resolve_call(call, import_aliases(tree)) == "numpy.random.randint"

    def test_resolve_call_unresolvable_receiver(self):
        tree = ast.parse("f()[0].g()\n")
        call = tree.body[0].value
        assert resolve_call(call, {}) is None


class TestRulePack:
    def test_six_rules_registered_and_valid(self):
        assert sorted(RULES_BY_CODE) == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        ]
        for rule in ALL_RULES:
            validate_rule(rule)  # raises on malformed code / missing docs


class TestClassIndex:
    def test_getstate_found_through_project_local_base(self, make_project):
        project = make_project({
            "src/repro/a.py": (
                "class Base:\n"
                "    def __getstate__(self):\n"
                "        return {}\n"
            ),
            "src/repro/b.py": (
                "from repro.a import Base\n"
                "class Child(Base):\n"
                "    pass\n"
            ),
        })
        assert project.class_defines("Child", "__getstate__")
        assert not project.class_defines("Child", "__setstate__")

    def test_unresolvable_base_is_conservative(self, make_project):
        project = make_project({
            "src/repro/a.py": "class C(SomeLibBase):\n    pass\n",
        })
        assert not project.class_defines("C", "__getstate__")
