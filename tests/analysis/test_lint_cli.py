"""CLI-layer self-tests for ``repro lint`` / ``tools/run_lint.py``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main

BAD_TREE = {
    "src/repro/workloads/gen.py": (
        "import random\n"
        "def pick():\n"
        "    return random.random()\n"
    ),
}

CLEAN_TREE = {
    "src/repro/workloads/gen.py": (
        "import random\n"
        "def pick(seed):\n"
        "    return random.Random(seed).random()\n"
    ),
}


def _write(tmp_path, files):
    root = tmp_path / "tree"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _write(tmp_path, CLEAN_TREE)
        assert main(["--root", str(root)]) == 0
        assert "0 blocking finding(s)" in capsys.readouterr().out

    def test_finding_exits_one(self, tmp_path, capsys):
        root = _write(tmp_path, BAD_TREE)
        assert main(["--root", str(root), "--check"]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "gen.py:3" in out

    def test_unparseable_file_exits_one(self, tmp_path, capsys):
        root = _write(tmp_path, {"src/repro/bad.py": "def oops(:\n"})
        assert main(["--root", str(root)]) == 1
        assert "REP000" in capsys.readouterr().out

    def test_missing_root_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no src/repro tree"):
            main(["--root", str(tmp_path / "nowhere")])


class TestJsonOutput:
    def test_format_json_document(self, tmp_path, capsys):
        root = _write(tmp_path, BAD_TREE)
        assert main(["--root", str(root), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 1
        assert doc["summary"]["new"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "REP001"
        assert finding["status"] == "new"
        assert finding["fingerprint"]

    def test_out_artifact_alongside_text(self, tmp_path, capsys):
        root = _write(tmp_path, BAD_TREE)
        artifact = tmp_path / "lint.json"
        assert main(["--root", str(root), "--out", str(artifact)]) == 1
        doc = json.loads(artifact.read_text(encoding="utf-8"))
        assert doc["summary"]["new"] == 1
        assert "REP001" in capsys.readouterr().out  # text still on stdout


class TestBaselineWorkflow:
    def test_write_then_check_round_trip(self, tmp_path, capsys):
        root = _write(tmp_path, BAD_TREE)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert (root / ".repro-lint-baseline.json").exists()
        # Grandfathered: same tree now passes.
        assert main(["--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_no_baseline_reblocks(self, tmp_path):
        root = _write(tmp_path, BAD_TREE)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert main(["--root", str(root), "--no-baseline"]) == 1

    def test_stale_entry_warns_but_passes(self, tmp_path, capsys):
        root = _write(tmp_path, BAD_TREE)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        # Fix the violation; its baseline entry goes stale.
        gen = root / "src/repro/workloads/gen.py"
        gen.write_text(CLEAN_TREE["src/repro/workloads/gen.py"], encoding="utf-8")
        assert main(["--root", str(root)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out


class TestListRules:
    def test_catalog_lists_all_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out
