"""REP002 self-tests: bad fires, good passes, suppression honored."""

from __future__ import annotations

from repro.analysis.rules import RULES_BY_CODE
from repro.analysis.runner import lint_project

RULE = RULES_BY_CODE["REP002"]


def _findings(project):
    return list(RULE.check(project))


class TestFires:
    def test_trace_cache_without_getstate(self, make_project):
        project = make_project({
            "src/repro/sim/prog.py": (
                "class Program:\n"
                "    def warm(self):\n"
                "        self._trace_cache = {}\n"
            ),
        })
        (f,) = _findings(project)
        assert "Program" in f.message and "_trace_cache" in f.message

    def test_np_suffix_without_getstate(self, make_project):
        project = make_project({
            "src/repro/predictors/p.py": (
                "class Pred:\n"
                "    def tables(self):\n"
                "        self._weights_np = None\n"
            ),
        })
        (f,) = _findings(project)
        assert "_weights_np" in f.message

    def test_frozen_dataclass_setattr_spelling(self, make_project):
        project = make_project({
            "src/repro/sim/prog.py": (
                "class Spec:\n"
                "    def memo(self):\n"
                "        object.__setattr__(self, '_replay_ctx', 1)\n"
            ),
        })
        (f,) = _findings(project)
        assert "_replay_ctx" in f.message

    def test_one_finding_per_class_lists_all_attrs(self, make_project):
        project = make_project({
            "src/repro/sim/prog.py": (
                "class P:\n"
                "    def a(self):\n"
                "        self._trace_cache = {}\n"
                "    def b(self):\n"
                "        self._cols_np = None\n"
            ),
        })
        (f,) = _findings(project)
        assert "_cols_np" in f.message and "_trace_cache" in f.message


class TestPasses:
    def test_own_getstate_passes(self, make_project):
        project = make_project({
            "src/repro/sim/prog.py": (
                "class Program:\n"
                "    def warm(self):\n"
                "        self._trace_cache = {}\n"
                "    def __getstate__(self):\n"
                "        state = dict(self.__dict__)\n"
                "        state.pop('_trace_cache', None)\n"
                "        return state\n"
            ),
        })
        assert _findings(project) == []

    def test_inherited_getstate_passes(self, make_project):
        project = make_project({
            "src/repro/predictors/base.py": (
                "class DirectionPredictor:\n"
                "    def __getstate__(self):\n"
                "        return {}\n"
            ),
            "src/repro/predictors/p.py": (
                "from repro.predictors.base import DirectionPredictor\n"
                "class Pred(DirectionPredictor):\n"
                "    def tables(self):\n"
                "        self._weights_np = None\n"
            ),
        })
        assert _findings(project) == []

    def test_non_cache_attrs_ignored(self, make_project):
        project = make_project({
            "src/repro/sim/prog.py": (
                "class P:\n"
                "    def init(self):\n"
                "        self.results = {}\n"
                "        self.np_count = 0\n"  # prefix, not suffix
            ),
        })
        assert _findings(project) == []


class TestSuppression:
    def test_inline_suppression_on_class_line(self, make_project):
        project = make_project({
            "src/repro/sim/prog.py": (
                "class P:  # repro-lint: disable=REP002\n"
                "    def warm(self):\n"
                "        self._trace_cache = {}\n"
            ),
        })
        report = lint_project(project, [RULE])
        assert report.new == [] and len(report.suppressed) == 1
