"""REP003 self-tests: manifest drift detection on fixture spec trees."""

from __future__ import annotations

import json

from repro.analysis.rules import RULES_BY_CODE
from repro.analysis.rules.hash_schema import (
    MANIFEST_REL,
    generate_manifest,
    reachable_dataclasses,
)
from repro.analysis.runner import collect_project, lint_project

RULE = RULES_BY_CODE["REP003"]

SPECS = """\
from dataclasses import dataclass

SPEC_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ProgramSpec:
    benchmark: str
    seed: int

    def build_key(self):
        return (self.benchmark, self.seed)


@dataclass(frozen=True)
class SweepCell:
    program: ProgramSpec
    mode: str

    def content_hash(self):
        return hash((self.program.build_key(), self.mode))
"""


def _project_with_manifest(tmp_path, specs_text=SPECS, mutate=None):
    """Build a fixture tree whose manifest matches ``SPECS``, then
    optionally swap in drifted spec text."""
    root = tmp_path / "tree"
    specs = root / "src/repro/sim/specs.py"
    specs.parent.mkdir(parents=True)
    specs.write_text(specs_text, encoding="utf-8")
    project = collect_project(root)
    manifest_path = root / MANIFEST_REL
    manifest_path.parent.mkdir(parents=True)
    manifest = generate_manifest(project)
    if mutate is not None:
        mutate(manifest)
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    return collect_project(root)


def _findings(project):
    return list(RULE.check(project))


class TestReachability:
    def test_walks_field_annotations_from_roots(self, tmp_path):
        project = _project_with_manifest(tmp_path)
        reachable = reachable_dataclasses(project)
        assert set(reachable) == {"SweepCell", "ProgramSpec"}
        assert reachable["SweepCell"][2] == ["program", "mode"]

    def test_real_tree_covers_known_spec_classes(self, repo_project):
        reachable = reachable_dataclasses(repo_project)
        assert {"SweepCell", "ProgramSpec", "SystemSpec", "PredictorSpec",
                "SimulationConfig", "WorkloadProfile"} <= set(reachable)


class TestFires:
    def test_missing_manifest(self, tmp_path):
        root = tmp_path / "tree"
        specs = root / "src/repro/sim/specs.py"
        specs.parent.mkdir(parents=True)
        specs.write_text(SPECS, encoding="utf-8")
        (f,) = _findings(collect_project(root))
        assert "no pinned hash-schema manifest" in f.message

    def test_new_field_without_version_bump(self, tmp_path):
        project = _project_with_manifest(tmp_path)
        drifted = SPECS.replace("    mode: str\n", "    mode: str\n    tier: int = 0\n")
        project.replace_file("src/repro/sim/specs.py", drifted)
        (f,) = _findings(project)
        assert "SweepCell.tier" in f.message and "not pinned" in f.message

    def test_version_bump_without_regeneration(self, tmp_path):
        project = _project_with_manifest(tmp_path)
        project.replace_file(
            "src/repro/sim/specs.py",
            SPECS.replace("SPEC_FORMAT_VERSION = 1", "SPEC_FORMAT_VERSION = 2"),
        )
        (f,) = _findings(project)
        assert "generated at version 1" in f.message

    def test_removed_field_flagged(self, tmp_path):
        project = _project_with_manifest(tmp_path)
        project.replace_file(
            "src/repro/sim/specs.py", SPECS.replace("    seed: int\n", "")
        )
        findings = _findings(project)
        assert any("ProgramSpec.seed" in f.message for f in findings)

    def test_newly_reachable_dataclass_flagged(self, tmp_path):
        project = _project_with_manifest(tmp_path)
        drifted = SPECS + (
            "\n\n@dataclass(frozen=True)\n"
            "class ExtraKnob:\n"
            "    depth: int\n"
        )
        drifted = drifted.replace("    mode: str\n", "    mode: str\n    knob: ExtraKnob | None = None\n")
        project.replace_file("src/repro/sim/specs.py", drifted)
        findings = _findings(project)
        assert any("ExtraKnob" in f.message and "absent from" in f.message
                   for f in findings)


class TestPasses:
    def test_matching_manifest_is_clean(self, tmp_path):
        assert _findings(_project_with_manifest(tmp_path)) == []

    def test_declared_exclusion_is_clean(self, tmp_path):
        # A field moved from 'hashed' to 'excluded' stays pinned.
        def exclude_mode(manifest):
            cell = manifest["classes"]["SweepCell"]
            cell["hashed"].remove("mode")
            cell["excluded"].append("mode")

        project = _project_with_manifest(tmp_path, mutate=exclude_mode)
        assert _findings(project) == []

    def test_regenerate_preserves_exclusions(self, tmp_path):
        def exclude_mode(manifest):
            cell = manifest["classes"]["SweepCell"]
            cell["hashed"].remove("mode")
            cell["excluded"].append("mode")

        project = _project_with_manifest(tmp_path, mutate=exclude_mode)
        regenerated = generate_manifest(project)
        assert regenerated["classes"]["SweepCell"]["excluded"] == ["mode"]
        assert "mode" not in regenerated["classes"]["SweepCell"]["hashed"]

    def test_fixture_trees_without_spec_layer_skip(self, make_project):
        project = make_project({"src/repro/util.py": "x = 1\n"})
        assert _findings(project) == []


class TestSuppression:
    def test_inline_suppression_honored(self, tmp_path):
        project = _project_with_manifest(tmp_path)
        drifted = SPECS.replace(
            "    mode: str\n",
            "    mode: str\n    tier: int = 0  # repro-lint: disable=REP003\n",
        )
        project.replace_file("src/repro/sim/specs.py", drifted)
        report = lint_project(project, [RULE])
        assert report.new == [] and len(report.suppressed) == 1
