"""REP004 self-tests: registry/dispatch/allowlist/matrix cross-checks."""

from __future__ import annotations

from repro.analysis.rules import RULES_BY_CODE
from repro.analysis.runner import lint_project

RULE = RULES_BY_CODE["REP004"]


def _findings(project):
    return list(RULE.check(project))


def _tree(*, allowlist='("slowpoke",)', register_extra="", matrix_extra=""):
    """A minimal predictor layer: `fast` is batched, `slowpoke` is an
    allowlisted scalar fallback, both exercised by the matrix file."""
    return {
        "src/repro/predictors/fast.py": (
            "class FastPredictor:\n    pass\n"
            "register_predictor('fast', None, None)\n"
        ),
        "src/repro/predictors/slow.py": (
            "class SlowPredictor:\n    pass\n"
            "register_predictor('slowpoke', None, None)\n"
            + register_extra
        ),
        "src/repro/sim/batched.py": (
            "from repro.predictors.fast import FastPredictor\n"
            "_PROPHET_KINDS = {FastPredictor: None}\n"
            "_CRITIC_KINDS = {}\n"
            f"SCALAR_FALLBACK_KINDS = frozenset({allowlist})\n"
        ),
        "tests/sim/test_differential_kernel.py": (
            'KINDS = ("fast", "slowpoke")\n' + matrix_extra
        ),
    }


class TestPasses:
    def test_batched_plus_allowlisted_is_clean(self, make_project):
        assert _findings(make_project(_tree())) == []

    def test_trees_without_predictor_layer_skip(self, make_project):
        project = make_project({"src/repro/util.py": "x = 1\n"})
        assert _findings(project) == []


class TestFires:
    def test_undeclared_fallback_kind(self, make_project):
        files = _tree(
            register_extra="register_predictor('ghost', None, None)\n",
            matrix_extra='MORE = ("ghost",)\n',
        )
        (f,) = _findings(make_project(files))
        assert "`ghost`" in f.message and "scalar loop silently" in f.message

    def test_kind_missing_from_differential_matrix(self, make_project):
        files = _tree()
        files["tests/sim/test_differential_kernel.py"] = 'KINDS = ("fast",)\n'
        (f,) = _findings(make_project(files))
        assert "`slowpoke`" in f.message and "differential backend matrix" in f.message

    def test_allowlist_naming_unregistered_kind(self, make_project):
        files = _tree(allowlist='("slowpoke", "figment")')
        (f,) = _findings(make_project(files))
        assert "`figment`" in f.message and "not a registered" in f.message

    def test_stale_allowlist_entry(self, make_project):
        # slow.py gains a batched dispatch class; its allowlist entry rots.
        files = _tree()
        files["src/repro/sim/batched.py"] = (
            "from repro.predictors.fast import FastPredictor\n"
            "from repro.predictors.slow import SlowPredictor\n"
            "_PROPHET_KINDS = {FastPredictor: None, SlowPredictor: None}\n"
            "_CRITIC_KINDS = {}\n"
            'SCALAR_FALLBACK_KINDS = frozenset(("slowpoke",))\n'
        )
        (f,) = _findings(make_project(files))
        assert "stale" in f.message and "`slowpoke`" in f.message

    def test_missing_allowlist_literal(self, make_project):
        files = _tree()
        files["src/repro/sim/batched.py"] = (
            "from repro.predictors.fast import FastPredictor\n"
            "_PROPHET_KINDS = {FastPredictor: None}\n"
            "_CRITIC_KINDS = {}\n"
        )
        findings = _findings(make_project(files))
        assert any("no parseable" in f.message for f in findings)


class TestSuppression:
    def test_inline_suppression_on_registration_line(self, make_project):
        files = _tree(
            register_extra=(
                "register_predictor('ghost', None, None)"
                "  # repro-lint: disable=REP004\n"
            ),
            matrix_extra='MORE = ("ghost",)\n',
        )
        report = lint_project(make_project(files), [RULE])
        assert report.new == [] and len(report.suppressed) == 1


class TestRealTree:
    def test_every_registered_kind_accounted_for(self, repo_project):
        # The acceptance bar for this PR: the real tree is REP004-clean.
        assert _findings(repo_project) == []
