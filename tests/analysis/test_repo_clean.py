"""The acceptance tests: the real tree lints clean, and seeded
mutations of the real tree are caught.

These are the teeth of the subsystem. The clean test pins "``repro
lint`` exits 0 on this commit" as a regression test; the mutation tests
prove the two bug classes ISSUE history cares most about — a silent
hash-schema drift and a blocking call on the daemon's event loop —
would fail CI, not just in principle but against today's actual source.
"""

from __future__ import annotations

import copy
from pathlib import Path

from repro.analysis.framework import Baseline
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE
from repro.analysis.runner import BASELINE_REL, lint_project

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepoIsClean:
    def test_lint_exits_zero_on_current_tree(self, repo_project):
        baseline = Baseline.load(REPO_ROOT / BASELINE_REL)
        report = lint_project(repo_project, ALL_RULES, baseline)
        assert report.parse_errors == []
        assert report.new == [], "\n".join(f.render() for f in report.new)
        assert report.exit_code == 0

    def test_no_stale_baseline_entries(self, repo_project):
        baseline = Baseline.load(REPO_ROOT / BASELINE_REL)
        report = lint_project(repo_project, ALL_RULES, baseline)
        assert report.stale_baseline == []


class TestSeededMutations:
    """Inject each historical bug into the real tree; the linter must
    catch it. ``Project.replace_file`` swaps file contents in memory, so
    nothing on disk is touched."""

    @staticmethod
    def _fork(repo_project):
        """An independent copy: mutations must not pollute the
        session-scoped project other tests share."""
        project = copy.copy(repo_project)
        project.files = list(repo_project.files)
        project._by_rel = dict(repo_project._by_rel)
        project._classes = None
        return project

    def _mutated(self, repo_project, rel, old, new):
        project = self._fork(repo_project)
        text = project.file(rel).text
        assert old in text, f"mutation anchor not found in {rel}"
        project.replace_file(rel, text.replace(old, new, 1))
        return project

    def test_hash_schema_field_injection_fails(self, repo_project):
        # PR 3's bug, replayed: add a spec field without bumping
        # SPEC_FORMAT_VERSION.
        project = self._mutated(
            repo_project,
            "src/repro/sim/specs.py",
            "    mode: str = MODE_ACCURACY\n",
            "    mode: str = MODE_ACCURACY\n    cache_tier: int = 0\n",
        )
        findings = list(RULES_BY_CODE["REP003"].check(project))
        assert any("SweepCell.cache_tier" in f.message for f in findings)
        report = lint_project(project, ALL_RULES,
                              Baseline.load(REPO_ROOT / BASELINE_REL))
        assert report.exit_code == 1

    def test_blocking_call_in_daemon_coroutine_fails(self, repo_project):
        # PR 7's bug class, replayed: synchronous sleep on the event loop.
        anchor = "async def _route(self, method: str, target: str, body: bytes, writer) -> None:"
        project = self._mutated(
            repo_project,
            "src/repro/serve/daemon.py",
            anchor,
            anchor + "\n        time.sleep(0.01)",
        )
        findings = list(RULES_BY_CODE["REP005"].check(project))
        assert any(
            "time.sleep" in f.message and "_route" in f.message for f in findings
        )
        report = lint_project(project, ALL_RULES,
                              Baseline.load(REPO_ROOT / BASELINE_REL))
        assert report.exit_code == 1

    def test_prefix_daemon_cache_handler_shape_fails(self, repo_project):
        # The actual pre-fix shape of this PR: a sync _handle_cache doing
        # backend byte I/O, called await-free from async _route.
        project = self._mutated(
            repo_project,
            "src/repro/serve/daemon.py",
            "    async def _handle_cache(",
            "    def _handle_cache(",
        )
        text = project.file("src/repro/serve/daemon.py").text
        # Undo the awaits and executor hops so the handler is sync again.
        text = text.replace(
            "await self._handle_cache(", "self._handle_cache(", 1
        )
        text = text.replace(
            "data = await loop.run_in_executor(None, backend.get_bytes, key)",
            "data = backend.get_bytes(key)",
        )
        text = text.replace(
            "await loop.run_in_executor(None, backend.put_bytes, key, body)",
            "backend.put_bytes(key, body)",
        )
        project.replace_file("src/repro/serve/daemon.py", text)
        findings = list(RULES_BY_CODE["REP005"].check(project))
        assert any("_handle_cache" in f.message for f in findings)

    def test_unregistered_backend_kind_fails(self, repo_project):
        # PR 6's hazard, replayed: register a predictor kind with no
        # batched arm, no allowlist entry, no differential coverage.
        project = self._fork(repo_project)
        rel = "src/repro/predictors/static.py"
        text = project.file(rel).text
        project.replace_file(
            rel, text + '\nregister_predictor("phantom-kind", None, None)\n'
        )
        findings = list(RULES_BY_CODE["REP004"].check(project))
        messages = [f.message for f in findings if "phantom-kind" in f.message]
        assert any("scalar loop silently" in m for m in messages)
        assert any("differential backend matrix" in m for m in messages)
