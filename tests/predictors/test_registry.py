"""Tests for the string-keyed predictor registry and its budget preset layer."""

import pytest

from repro.predictors import (
    GshareParams,
    GsharePredictor,
    TournamentPredictor,
    build_predictor,
    coerce_params,
    critic_capable_kinds,
    make_critic,
    make_predictor,
    params_for,
    predictor_info,
    register_predictor,
    registered_kinds,
    registered_predictors,
)

ALL_KINDS = [
    "2bc-gskew",
    "always-not-taken",
    "always-taken",
    "bimodal",
    "filtered-perceptron",
    "gas",
    "gshare",
    "local",
    "perceptron",
    "tage",
    "tagged-gshare",
    "tournament",
    "yags",
]

CRITIC_KINDS = [
    "2bc-gskew",
    "filtered-perceptron",
    "gas",
    "gshare",
    "perceptron",
    "tage",
    "tagged-gshare",
    "yags",
]


class TestRegistry:
    def test_whole_zoo_is_registered(self):
        assert registered_kinds() == ALL_KINDS

    def test_critic_capability_requires_reading_the_bor(self):
        # Critic-capable predictors index with the caller-supplied history
        # (the BOR); history-blind and local-history designs stay prophets.
        assert critic_capable_kinds() == CRITIC_KINDS

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_kind_builds_from_default_params(self, kind):
        predictor = build_predictor(kind)
        assert predictor.storage_bits() >= 0
        # Fresh state every call: no sharing between instances.
        assert build_predictor(kind) is not predictor

    def test_unknown_kind_lists_registered_kinds(self):
        with pytest.raises(KeyError, match="registered kinds.*2bc-gskew"):
            predictor_info("oracle")

    def test_unknown_param_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid parameters.*entries"):
            coerce_params("gshare", {"entires": 1024})

    def test_bad_param_value_names_the_kind(self):
        with pytest.raises(ValueError, match="gshare"):
            build_predictor("gshare", {"entries": 1000})  # not a power of two

    def test_params_accepts_schema_instance(self):
        predictor = build_predictor("gshare", GshareParams(entries=1024))
        assert isinstance(predictor, GsharePredictor)
        assert predictor.entries == 1024

    def test_prophet_only_kind_refused_as_critic(self):
        with pytest.raises(ValueError, match="critic-capable kinds"):
            build_predictor("local", role="critic")

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor role"):
            build_predictor("gshare", role="referee")

    def test_duplicate_registration_rejected(self):
        info = predictor_info("gshare")
        with pytest.raises(ValueError, match="already registered"):
            register_predictor(
                "gshare", info.params_type, info.factory, critic_capable=True
            )

    def test_registered_predictors_carry_schemas(self):
        for info in registered_predictors():
            assert info.kind in ALL_KINDS
            assert isinstance(info.param_names(), tuple)


class TestTournamentComposition:
    def test_nested_components_resolve_through_registry(self):
        predictor = build_predictor(
            "tournament",
            {
                "component_a": {"kind": "local", "params": {"history_entries": 256}},
                "component_b": {"kind": "gshare", "budget_kb": 2},
                "chooser_entries": 1024,
            },
        )
        assert isinstance(predictor, TournamentPredictor)
        assert predictor.component_a.history_entries == 256
        assert predictor.component_b.entries == 8 * 1024

    def test_bare_kind_strings_use_default_geometry(self):
        predictor = build_predictor(
            "tournament", {"component_a": "bimodal", "component_b": "perceptron"}
        )
        assert predictor.component_b.n_perceptrons == 282

    @pytest.mark.parametrize(
        "descriptor",
        [
            {"params": {"entries": 64}},  # no kind
            {"kind": "gshare", "params": {}, "budget_kb": 2},  # both geometries
            {"kind": "gshare", "entries": 64},  # params outside 'params'
            42,
        ],
    )
    def test_malformed_component_descriptors_rejected(self, descriptor):
        with pytest.raises(ValueError, match="tournament components"):
            build_predictor(
                "tournament", {"component_a": descriptor, "component_b": "bimodal"}
            )


class TestBudgetPresets:
    def test_presets_expand_to_registry_params(self):
        assert params_for("gshare", 8) == GshareParams(32 * 1024, 15)

    def test_make_predictor_matches_direct_construction(self):
        preset = make_predictor("gshare", 8)
        direct = GsharePredictor(32 * 1024, 15)
        assert preset.entries == direct.entries
        assert preset.history_length == direct.history_length
        assert preset.storage_bits() == direct.storage_bits()

    def test_unknown_kind_error_lists_registered_kinds(self):
        with pytest.raises(KeyError, match="registered kinds"):
            make_predictor("oracle", 8)

    def test_unknown_budget_error_lists_valid_budgets(self):
        with pytest.raises(KeyError, match=r"valid budgets: \[2, 4, 8, 16, 32\]"):
            make_predictor("gshare", 7)

    def test_unbudgeted_kind_error_points_at_explicit_params(self):
        with pytest.raises(KeyError, match="explicit params"):
            make_predictor("yags", 8)

    def test_prophet_only_critic_rejected_before_budget_lookup(self):
        # The role error (with the capability list) must win over the
        # missing-preset error: it is the real problem.
        with pytest.raises(ValueError, match="critic-capable kinds"):
            make_critic("local", 8)
