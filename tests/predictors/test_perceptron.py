"""Tests for the perceptron predictor (Jiménez & Lin)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import PerceptronPredictor
from tests.predictors.test_table_predictors import drive


class TestPerceptronBasics:
    def test_threshold_formula(self):
        assert PerceptronPredictor(64, 17).threshold == int(1.93 * 17 + 14)
        assert PerceptronPredictor(64, 28).threshold == int(1.93 * 28 + 14)

    def test_initial_prediction_is_taken(self):
        # Zero weights give output 0 which predicts taken (>= 0).
        p = PerceptronPredictor(16, 8)
        assert p.predict(0x4000, 0)

    def test_learns_bias_through_bias_weight(self):
        p = PerceptronPredictor(16, 8)
        assert drive(p, lambda i, h: False, n=500) > 0.98
        assert p.weights[(0x4000 >> 2) % 16][0] < 0

    def test_learns_history_correlation(self):
        p = PerceptronPredictor(64, 12)
        assert drive(p, lambda i, h: bool((h >> 4) & 1)) > 0.95

    def test_learns_linearly_separable_xor_of_three(self):
        """Majority of last 3 outcomes IS linearly separable — must learn."""
        p = PerceptronPredictor(64, 12)
        acc = drive(p, lambda i, h: ((h & 1) + ((h >> 1) & 1) + ((h >> 2) & 1)) >= 2)
        assert acc > 0.9

    def test_cannot_learn_parity(self):
        """XOR of two independent history bits is not linearly separable.

        This is the perceptron's published blind spot and a useful negative
        control that the implementation is a real perceptron and not a
        lookup table. The history is driven externally with random bits so
        the XOR target cannot degenerate into a fixed sequence; a same-size
        gshare table learns the same function almost perfectly.
        """
        from repro.predictors import GsharePredictor
        from repro.utils.rng import DeterministicRng

        rng = DeterministicRng(2024)
        perceptron = PerceptronPredictor(64, 6)
        gshare = GsharePredictor(64, 6)
        correct = {"perceptron": 0, "gshare": 0}
        n, warmup = 4000, 1000
        for i in range(n):
            history = rng.next_u64() & 0x3F
            taken = bool((history & 1) ^ ((history >> 5) & 1))
            for name, p in (("perceptron", perceptron), ("gshare", gshare)):
                pred = p.predict(0x4000, history)
                if i >= warmup:
                    correct[name] += int(pred == taken)
                p.update(0x4000, history, taken, pred)
        counted = n - warmup
        assert correct["perceptron"] / counted < 0.75
        assert correct["gshare"] / counted > 0.9

    def test_long_history_support(self):
        p = PerceptronPredictor(113, 57)
        assert drive(p, lambda i, h: bool((h >> 50) & 1), n=6000) > 0.9

    def test_weights_saturate_at_8_bits(self):
        p = PerceptronPredictor(4, 4)
        for _ in range(2000):
            pred = p.predict(0x4000, 0b1111)
            p.update(0x4000, 0b1111, True, pred)
        assert p.weights.max() <= p.WEIGHT_MAX
        assert p.weights.min() >= p.WEIGHT_MIN

    def test_storage_budget(self):
        # Table 3: 113 perceptrons × 18 weights × 8 bits ≈ 2KB.
        p = PerceptronPredictor(113, 17)
        assert abs(p.storage_bytes() - 2048) < 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(0, 8)
        with pytest.raises(ValueError):
            PerceptronPredictor(8, 0)

    def test_reset_clears_weights(self):
        p = PerceptronPredictor(8, 8)
        drive(p, lambda i, h: False, n=200)
        p.reset()
        assert not p.weights.any()
        assert p.predict(0x4000, 0)


class TestPerceptronProperties:
    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_inputs_encoding(self, history):
        p = PerceptronPredictor(4, 24)
        x = p._inputs(history)
        assert x[0] == 1
        for bit in range(24):
            expected = 1 if (history >> bit) & 1 else -1
            assert x[1 + bit] == expected

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.booleans(),
    )
    def test_training_moves_output_toward_outcome(self, history, taken):
        p = PerceptronPredictor(4, 16)
        before = p.output(0x4000, history)
        p.update(0x4000, history, taken, p.predict(0x4000, history))
        after = p.output(0x4000, history)
        if taken:
            assert after >= before
        else:
            assert after <= before

    def test_output_dtype_never_overflows(self):
        # Max |output| = (h+1) * 127 which must fit int32 comfortably.
        p = PerceptronPredictor(2, 57)
        p.weights[:] = p.WEIGHT_MAX
        out = p.output(0x4000, (1 << 57) - 1)
        assert out == 58 * 127
        assert isinstance(out, int)
        assert p.weights.dtype == np.int16
