"""Tests for the TAGE extension predictor."""

import pytest

from repro.predictors import TagePredictor
from tests.predictors.test_table_predictors import drive


class TestTage:
    def test_learns_bias(self):
        assert drive(TagePredictor(), lambda i, h: True, n=1000) > 0.99

    def test_learns_short_history_pattern(self):
        assert drive(TagePredictor(), lambda i, h: bool((h >> 2) & 1)) > 0.9

    def test_learns_long_history_pattern(self):
        """Correlation at distance ~60 needs a long-history component."""
        p = TagePredictor(n_components=6, min_history=5, max_history=130)
        acc = drive(p, lambda i, h: bool((h >> 60) & 1), n=12000)
        assert acc > 0.85

    def test_geometric_history_series(self):
        p = TagePredictor(n_components=5, min_history=4, max_history=64)
        lengths = [c.history_length for c in p.components]
        assert lengths == sorted(lengths)
        assert lengths[0] == 4
        assert lengths[-1] == 64

    def test_single_component(self):
        p = TagePredictor(n_components=1, min_history=8)
        assert p.components[0].history_length == 8

    def test_rejects_zero_components(self):
        with pytest.raises(ValueError):
            TagePredictor(n_components=0)

    def test_allocation_on_mispredict(self):
        p = TagePredictor(n_components=3, component_entries=64)
        # Before any training no component hits.
        provider, _ = p._find(0x4000, 0b1010)
        assert provider is None
        # A mispredict should allocate a tagged entry.
        pred = p.predict(0x4000, 0b1010)
        p.update(0x4000, 0b1010, taken=not pred, predicted=pred)
        provider, _ = p._find(0x4000, 0b1010)
        assert provider is not None

    def test_reset(self):
        p = TagePredictor(n_components=2, component_entries=64)
        pred = p.predict(0x4000, 0b1)
        p.update(0x4000, 0b1, taken=not pred, predicted=pred)
        p.reset()
        provider, _ = p._find(0x4000, 0b1)
        assert provider is None

    def test_storage_scales_with_components(self):
        small = TagePredictor(n_components=2, component_entries=128)
        large = TagePredictor(n_components=6, component_entries=128)
        assert large.storage_bits() > small.storage_bits()

    def test_usefulness_protects_entries(self):
        p = TagePredictor(n_components=2, component_entries=16)
        comp = p.components[0]
        entry = comp.table[0]
        entry.valid = True
        entry.useful = 3
        entry_tag = entry.tag
        # Allocation pressure: many mispredicts elsewhere should not
        # instantly evict a maximally-useful entry at a different index.
        for i in range(20):
            pc = 0x8000 + 64 * i
            pred = p.predict(pc, 0)
            p.update(pc, 0, taken=not pred, predicted=pred)
        assert comp.table[0].valid
        assert comp.table[0].tag == entry_tag or comp.table[0].useful == 0
