"""Tests for Table-3 budget configurations."""

import pytest

from repro.predictors import PREDICTOR_BUDGETS, budget_table_rows, make_critic, make_predictor, make_prophet
from repro.predictors.budget import BUDGETS_KB


class TestBudgets:
    def test_all_table3_kinds_and_budgets_buildable(self):
        for kind in PREDICTOR_BUDGETS:
            for kb in BUDGETS_KB:
                predictor = make_predictor(kind, kb)
                assert predictor.storage_bits() > 0

    @pytest.mark.parametrize("kind", ["gshare", "2bc-gskew", "perceptron"])
    @pytest.mark.parametrize("kb", BUDGETS_KB)
    def test_core_predictors_within_10pct_of_budget(self, kind, kb):
        predictor = make_predictor(kind, kb)
        assert abs(predictor.storage_bytes() - kb * 1024) / (kb * 1024) < 0.10

    @pytest.mark.parametrize("kind", ["tagged-gshare", "filtered-perceptron"])
    @pytest.mark.parametrize("kb", BUDGETS_KB)
    def test_critics_within_30pct_of_budget(self, kind, kb):
        """Tagged structures carry tags/LRU the paper charges loosely;
        allow a wider band but stay in the right ballpark."""
        predictor = make_predictor(kind, kb)
        assert abs(predictor.storage_bytes() - kb * 1024) / (kb * 1024) < 0.30

    def test_gshare_history_equals_index_bits(self):
        for kb, expect in zip(BUDGETS_KB, (13, 14, 15, 16, 17)):
            assert make_predictor("gshare", kb).history_length == expect

    def test_perceptron_histories_match_table3(self):
        for kb, expect in zip(BUDGETS_KB, (17, 24, 28, 47, 57)):
            assert make_predictor("perceptron", kb).history_length == expect

    def test_tagged_gshare_bor_is_18(self):
        for kb in BUDGETS_KB:
            assert make_predictor("tagged-gshare", kb).history_length == 18

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            make_predictor("oracle", 8)

    def test_unknown_budget_raises(self):
        with pytest.raises(KeyError):
            make_predictor("gshare", 7)

    def test_make_prophet_alias(self):
        assert make_prophet("gshare", 8).name == "gshare"

    def test_make_critic_accepts_table3_critics(self):
        assert make_critic("tagged-gshare", 8).name == "tagged-gshare"
        assert make_critic("filtered-perceptron", 8).name == "filtered-perceptron"

    def test_tage_budgets_available(self):
        for kb in BUDGETS_KB:
            predictor = make_predictor("tage", kb)
            assert 0.4 * kb * 1024 <= predictor.storage_bytes() <= 1.6 * kb * 1024

    def test_budget_table_rows_cover_grid(self):
        rows = budget_table_rows()
        assert len(rows) == len(PREDICTOR_BUDGETS) * len(BUDGETS_KB)
        assert all(row["modelled_bytes"] > 0 for row in rows)
