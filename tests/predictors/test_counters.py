"""Tests for saturating counters and counter tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predictors.counters import CounterTable, SaturatingCounter


class TestSaturatingCounter:
    def test_default_is_weakly_not_taken(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 1
        assert not c.taken

    def test_saturates_high(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(True)
        assert c.value == 3
        assert c.taken and c.is_saturated

    def test_saturates_low(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(False)
        assert c.value == 0
        assert not c.taken

    def test_hysteresis(self):
        """A strongly-taken counter survives one not-taken outcome."""
        c = SaturatingCounter(bits=2, initial=3)
        c.update(False)
        assert c.taken  # still predicts taken at value 2

    def test_set_direction(self):
        c = SaturatingCounter(bits=2)
        c.set_direction(True)
        assert c.taken and not c.is_saturated
        c.set_direction(False)
        assert not c.taken and not c.is_saturated

    def test_one_bit_counter(self):
        c = SaturatingCounter(bits=1, initial=0)
        assert not c.taken
        c.update(True)
        assert c.taken

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)

    @given(st.lists(st.booleans(), max_size=200), st.integers(min_value=1, max_value=5))
    def test_value_always_in_range(self, outcomes, bits):
        c = SaturatingCounter(bits=bits)
        for taken in outcomes:
            c.update(taken)
            assert 0 <= c.value <= c.maximum


class TestCounterTable:
    def test_initial_direction(self):
        t = CounterTable(16, bits=2)
        assert not any(t.taken(i) for i in range(16))

    def test_independent_entries(self):
        t = CounterTable(4, bits=2)
        t.update(1, True)
        t.update(1, True)
        assert t.taken(1)
        assert not t.taken(0)

    def test_set_direction(self):
        t = CounterTable(4, bits=2)
        t.set_direction(2, True)
        assert t.taken(2)
        assert t.value(2) == 2

    def test_confidence(self):
        t = CounterTable(4, bits=2)
        t.set_direction(0, True)   # value 2, near boundary
        assert t.confidence(0) <= t.confidence(1) + 1
        t.update(0, True)          # value 3, saturated
        assert t.confidence(0) >= 1

    def test_storage_bits(self):
        assert CounterTable(8192, bits=2).storage_bits() == 16384

    def test_reset(self):
        t = CounterTable(4, bits=2)
        t.update(0, True)
        t.update(0, True)
        t.reset()
        assert not t.taken(0)

    def test_rejects_wide_counters(self):
        with pytest.raises(ValueError):
            CounterTable(4, bits=8)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            CounterTable(0)

    @given(
        st.lists(st.tuples(st.integers(min_value=0, max_value=15), st.booleans()), max_size=300),
        st.integers(min_value=1, max_value=6),
    )
    def test_values_stay_in_range(self, ops, bits):
        t = CounterTable(16, bits=bits)
        for index, taken in ops:
            t.update(index, taken)
            assert 0 <= t.value(index) <= t.maximum

    @given(st.integers(min_value=1, max_value=6))
    def test_agreement_with_scalar_counter(self, bits):
        """CounterTable must behave exactly like SaturatingCounter."""
        table = CounterTable(1, bits=bits)
        scalar = SaturatingCounter(bits=bits)
        pattern = [True, True, False, True, False, False, False, True] * 4
        for taken in pattern:
            table.update(0, taken)
            scalar.update(taken)
            assert table.value(0) == scalar.value
            assert table.taken(0) == scalar.taken
