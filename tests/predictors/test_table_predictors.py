"""Behavioural tests shared across the table-based predictors.

Each predictor should (a) learn simple biases, (b) learn history-correlated
patterns when given history, and (c) report plausible storage budgets.
"""

import pytest

from repro.predictors import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    GAsPredictor,
    GsharePredictor,
    LocalHistoryPredictor,
    TournamentPredictor,
    TwoBcGskewPredictor,
    YagsPredictor,
)

HIST_MASK = (1 << 63) - 1


def drive(predictor, outcome_fn, n=3000, pcs=(0x4000,), warmup_frac=0.25):
    """Run a predictor over a synthetic stream; return post-warmup accuracy."""
    hist = 0
    correct = 0
    counted = 0
    warmup = int(n * warmup_frac)
    for i in range(n):
        pc = pcs[i % len(pcs)]
        taken = outcome_fn(i, hist)
        pred = predictor.predict(pc, hist)
        if i >= warmup:
            correct += int(pred == taken)
            counted += 1
        predictor.update(pc, hist, taken, pred)
        hist = ((hist << 1) | int(taken)) & HIST_MASK
    return correct / counted


class TestStaticPredictors:
    def test_always_taken(self):
        p = AlwaysTakenPredictor()
        acc = drive(p, lambda i, h: True, n=100)
        assert acc == 1.0
        assert p.storage_bits() == 0

    def test_always_not_taken(self):
        p = AlwaysNotTakenPredictor()
        acc = drive(p, lambda i, h: i % 2 == 0, n=1000)
        assert 0.4 < acc < 0.6

    def test_stats_accumulate(self):
        p = AlwaysTakenPredictor()
        drive(p, lambda i, h: i % 4 != 0, n=400)
        assert p.stats.predictions == 400
        assert 0.7 < p.stats.accuracy < 0.8


class TestBimodal:
    def test_learns_bias(self):
        p = BimodalPredictor(1024)
        assert drive(p, lambda i, h: True) > 0.99

    def test_cannot_learn_alternation_pattern(self):
        """Bimodal has no history: a 50/50 alternating branch stays ~50%."""
        p = BimodalPredictor(1024)
        acc = drive(p, lambda i, h: i % 2 == 0)
        assert acc < 0.7

    def test_distinguishes_pcs(self):
        p = BimodalPredictor(1024)
        hist = 0
        for _ in range(500):
            for pc, taken in ((0x4000, True), (0x4004, False)):
                pred = p.predict(pc, hist)
                p.update(pc, hist, taken, pred)
        assert p.predict(0x4000, 0)
        assert not p.predict(0x4004, 0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(1000)

    def test_storage(self):
        assert BimodalPredictor(8192).storage_bits() == 16384


class TestGshare:
    def test_learns_periodic_pattern(self):
        p = GsharePredictor(4096, 12)
        assert drive(p, lambda i, h: i % 5 != 0) > 0.95

    def test_learns_history_correlation(self):
        # Outcome equals the outcome 3 branches ago.
        p = GsharePredictor(4096, 12)
        acc = drive(p, lambda i, h: bool((h >> 2) & 1))
        assert acc > 0.95

    def test_history_length_capped_by_index(self):
        with pytest.raises(ValueError):
            GsharePredictor(1024, 20)

    def test_storage_matches_table3(self):
        assert GsharePredictor(8 * 1024, 13).storage_bytes() == 2048

    def test_multiple_branches_share_table(self):
        p = GsharePredictor(256, 8)
        acc = drive(p, lambda i, h: i % 3 == 0, pcs=tuple(0x4000 + 4 * k for k in range(16)))
        assert acc > 0.8


class TestGAs:
    def test_learns_pattern(self):
        p = GAsPredictor(history_length=8, set_bits=4)
        assert drive(p, lambda i, h: i % 4 != 0) > 0.95

    def test_learns_mixed_stream_with_few_sets(self):
        """Even with only 4 PC sets, history carries the pattern."""
        n_pcs = 64
        pcs = tuple(0x4000 + 4 * k for k in range(n_pcs))

        def outcome(i, h):
            return (i + (i // n_pcs)) % 3 != 0

        gas = GAsPredictor(history_length=8, set_bits=2)
        assert drive(gas, outcome, n=6000, pcs=pcs) > 0.9

    def test_rejects_zero_index(self):
        with pytest.raises(ValueError):
            GAsPredictor(history_length=0, set_bits=0)


class TestLocal:
    def test_learns_per_branch_period(self):
        p = LocalHistoryPredictor(256, 10)
        assert drive(p, lambda i, h: i % 7 != 0) > 0.95

    def test_local_history_tracks_each_pc(self):
        p = LocalHistoryPredictor(256, 4)
        for _ in range(8):
            p.update(0x4000, 0, True, True)
            p.update(0x4004, 0, False, False)
        assert p.local_history(0x4000) == 0b1111
        assert p.local_history(0x4004) == 0

    def test_storage_includes_first_level(self):
        p = LocalHistoryPredictor(256, 10)
        assert p.storage_bits() == 256 * 10 + (1 << 10) * 2


class TestTournament:
    def _make(self):
        return TournamentPredictor(
            BimodalPredictor(1024),
            GsharePredictor(1024, 10),
            chooser_entries=1024,
        )

    def test_learns_simple_bias(self):
        assert drive(self._make(), lambda i, h: True, n=1000) > 0.99

    def test_chooser_picks_history_component_for_patterns(self):
        p = self._make()
        acc = drive(p, lambda i, h: bool((h >> 1) & 1))
        assert acc > 0.9

    def test_storage_sums_components(self):
        p = self._make()
        expected = (
            p.component_a.storage_bits() + p.component_b.storage_bits() + p.chooser.storage_bits()
        )
        assert p.storage_bits() == expected

    def test_rejects_bad_chooser_size(self):
        with pytest.raises(ValueError):
            TournamentPredictor(BimodalPredictor(64), BimodalPredictor(64), chooser_entries=100)


class TestTwoBcGskew:
    def test_learns_bias(self):
        p = TwoBcGskewPredictor(1024, 10)
        assert drive(p, lambda i, h: True, n=1000) > 0.99

    def test_learns_history_pattern(self):
        p = TwoBcGskewPredictor(2048, 11)
        assert drive(p, lambda i, h: bool((h >> 3) & 1)) > 0.9

    def test_beats_gshare_under_aliasing_pressure(self):
        """The de-aliased design should beat same-size gshare when many
        noisy-but-biased branches pollute the shared table (§6 claim).

        With 10% random flips the global history is noise, so gshare
        scatters each branch across its whole table while 2Bc-gskew's
        PC-indexed BIM bank (selected by META) captures the per-branch
        bias cleanly.
        """
        from repro.utils.rng import site_hash_outcome

        pcs = tuple(0x8000 + 64 * k for k in range(96))

        def outcome(i, h):
            slot = i % len(pcs)
            base = slot % 2 == 0
            flip = site_hash_outcome(7, slot, i // len(pcs), 0.10)
            return base != flip

        gskew = TwoBcGskewPredictor(256, 8)   # 4 × 256 × 2 bits = 2Kbit
        gsh = GsharePredictor(1024, 10)       # same total 2Kbit budget
        acc_gskew = drive(gskew, outcome, n=10000, pcs=pcs)
        acc_gsh = drive(gsh, outcome, n=10000, pcs=pcs)
        assert acc_gskew > acc_gsh

    def test_table3_budget(self):
        assert TwoBcGskewPredictor(2 * 1024, 11).storage_bytes() == 2048

    def test_meta_selects_bimodal_for_stable_branches(self):
        p = TwoBcGskewPredictor(512, 9)
        hist = 0
        pc = 0x4000
        for _ in range(2000):
            taken = True
            pred = p.predict(pc, hist)
            p.update(pc, hist, taken, pred)
            hist = ((hist << 1) | 1) & HIST_MASK
        assert p.bim.taken(p._bim_index(pc))


class TestYags:
    def test_learns_bias(self):
        p = YagsPredictor(1024, 256, 8)
        assert drive(p, lambda i, h: True, n=1000) > 0.99

    def test_exception_cache_learns_outliers(self):
        """A branch mostly taken but with a history-determined exception."""
        p = YagsPredictor(1024, 1024, 10)
        acc = drive(p, lambda i, h: (i % 8) != 0)
        assert acc > 0.9

    def test_storage_counts_caches(self):
        p = YagsPredictor(1024, 256, 8, tag_bits=8)
        assert p.storage_bits() == 1024 * 2 + 2 * 256 * (8 + 2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            YagsPredictor(1000, 256, 8)
