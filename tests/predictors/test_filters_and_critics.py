"""Tests for the tag filter and the two filtered critic predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import FilteredPerceptronPredictor, TaggedGsharePredictor
from repro.predictors.filtering import TagFilter


class TestTagFilter:
    def test_miss_then_insert_then_hit(self):
        f = TagFilter(sets=4, ways=2, tag_bits=8)
        assert f.lookup(0, 0xAB) is None
        f.insert(0, 0xAB)
        assert f.lookup(0, 0xAB) is not None

    def test_lru_eviction_order(self):
        f = TagFilter(sets=1, ways=2, tag_bits=8)
        f.insert(0, 1)
        f.insert(0, 2)
        f.lookup(0, 1)        # touch tag 1: tag 2 becomes LRU
        f.insert(0, 3)        # must evict tag 2
        assert f.probe(0, 1) is not None
        assert f.probe(0, 2) is None
        assert f.probe(0, 3) is not None

    def test_probe_has_no_side_effects(self):
        f = TagFilter(sets=1, ways=2, tag_bits=8)
        f.insert(0, 1)
        f.insert(0, 2)
        f.probe(0, 1)         # does NOT touch LRU
        f.insert(0, 3)        # evicts tag 1 (still LRU)
        assert f.probe(0, 1) is None

    def test_sets_are_independent(self):
        f = TagFilter(sets=2, ways=1, tag_bits=8)
        f.insert(0, 7)
        assert f.lookup(1, 7) is None

    def test_stats(self):
        f = TagFilter(sets=2, ways=1, tag_bits=8)
        f.lookup(0, 9)
        f.insert(0, 9)
        f.lookup(0, 9)
        assert f.stats.lookups == 2
        assert f.stats.hits == 1
        assert f.stats.inserts == 1
        assert f.stats.hit_rate == 0.5

    def test_eviction_counted(self):
        f = TagFilter(sets=1, ways=1, tag_bits=8)
        f.insert(0, 1)
        f.insert(0, 2)
        assert f.stats.evictions == 1

    def test_occupancy(self):
        f = TagFilter(sets=2, ways=2, tag_bits=8)
        assert f.occupancy() == 0.0
        f.insert(0, 1)
        assert f.occupancy() == 0.25

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TagFilter(sets=3, ways=2, tag_bits=8)
        with pytest.raises(ValueError):
            TagFilter(sets=0, ways=2, tag_bits=8)

    def test_reset(self):
        f = TagFilter(sets=2, ways=2, tag_bits=8)
        f.insert(0, 1)
        f.reset()
        assert f.occupancy() == 0.0
        assert f.stats.lookups == 0

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 255)), max_size=100))
    def test_most_recent_insert_always_present(self, ops):
        f = TagFilter(sets=4, ways=2, tag_bits=8)
        for set_index, tag in ops:
            f.insert(set_index, tag)
            assert f.probe(set_index, tag) is not None

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255)), min_size=1, max_size=200))
    def test_occupancy_bounded(self, ops):
        f = TagFilter(sets=2, ways=3, tag_bits=8)
        for set_index, tag in ops:
            if f.probe(set_index, tag) is None:
                f.insert(set_index, tag)
        assert 0.0 <= f.occupancy() <= 1.0


class TestTaggedGshareCritic:
    def test_miss_gives_no_opinion(self):
        c = TaggedGsharePredictor(sets=64, ways=4)
        result = c.lookup(0x4000, 0x1234)
        assert not result.hit
        assert result.prediction is None

    def test_insert_only_on_mispredict(self):
        c = TaggedGsharePredictor(sets=64, ways=4)
        c.train(0x4000, 0x1234, taken=True, final_mispredict=False)
        assert not c.lookup(0x4000, 0x1234).hit
        c.train(0x4000, 0x1234, taken=True, final_mispredict=True)
        assert c.lookup(0x4000, 0x1234).hit

    def test_inserted_entry_predicts_training_outcome(self):
        c = TaggedGsharePredictor(sets=64, ways=4)
        c.train(0x4000, 0x1234, taken=False, final_mispredict=True)
        result = c.lookup(0x4000, 0x1234)
        assert result.hit and result.prediction is False

    def test_hit_trains_counter(self):
        c = TaggedGsharePredictor(sets=64, ways=4)
        c.train(0x4000, 0x99, taken=True, final_mispredict=True)
        # Two not-taken trainings flip the weak-taken counter.
        c.train(0x4000, 0x99, taken=False, final_mispredict=False)
        c.train(0x4000, 0x99, taken=False, final_mispredict=False)
        assert c.lookup(0x4000, 0x99).prediction is False

    def test_contexts_with_different_bor_are_distinct(self):
        c = TaggedGsharePredictor(sets=256, ways=6)
        c.train(0x4000, 0b1010, taken=True, final_mispredict=True)
        c.train(0x4000, 0b0101, taken=False, final_mispredict=True)
        assert c.lookup(0x4000, 0b1010).prediction is True
        assert c.lookup(0x4000, 0b0101).prediction is False

    def test_standalone_interface(self):
        c = TaggedGsharePredictor(sets=64, ways=4)
        pred = c.predict(0x4000, 0)
        c.update(0x4000, 0, taken=False, predicted=pred)
        assert isinstance(pred, bool)

    def test_storage_near_table3_budget(self):
        # 1024 sets × 6 ways at 8-bit tags should land near 8KB.
        c = TaggedGsharePredictor(sets=1024, ways=6, tag_bits=8)
        assert 0.8 * 8192 <= c.storage_bytes() <= 1.2 * 8192

    def test_reset(self):
        c = TaggedGsharePredictor(sets=64, ways=4)
        c.train(0x4000, 1, taken=True, final_mispredict=True)
        c.reset()
        assert not c.lookup(0x4000, 1).hit


class TestFilteredPerceptronCritic:
    def test_miss_gives_no_opinion(self):
        c = FilteredPerceptronPredictor(64, 16, filter_sets=64)
        assert not c.lookup(0x4000, 0xFF).hit

    def test_insert_on_mispredict_primes_perceptron(self):
        c = FilteredPerceptronPredictor(64, 16, filter_sets=64)
        c.train(0x4000, 0xFF, taken=False, final_mispredict=True)
        result = c.lookup(0x4000, 0xFF)
        assert result.hit
        assert result.prediction is False

    def test_trains_only_on_hits(self):
        c = FilteredPerceptronPredictor(64, 16, filter_sets=64)
        # No entry: training with final_mispredict=False must not learn.
        for _ in range(5):
            c.train(0x4000, 0xFF, taken=False, final_mispredict=False)
        assert not c.lookup(0x4000, 0xFF).hit
        # Perceptron untouched: zero weights still predict taken.
        assert c.perceptron.predict(0x4000, 0xFF)

    def test_hit_path_learns_pattern(self):
        c = FilteredPerceptronPredictor(64, 16, filter_sets=64)
        c.train(0x4000, 0b1100, taken=False, final_mispredict=True)
        for _ in range(20):
            c.train(0x4000, 0b1100, taken=False, final_mispredict=False)
        assert c.lookup(0x4000, 0b1100).prediction is False

    def test_filter_and_perceptron_use_configured_widths(self):
        c = FilteredPerceptronPredictor(
            64, history_length=24, filter_sets=64, filter_history_length=18
        )
        assert c.perceptron.history_length == 24
        assert c.filter_history_length == 18
        assert c.history_length == 24

    def test_storage_sums_parts(self):
        c = FilteredPerceptronPredictor(73, 13, filter_sets=128, filter_ways=3)
        assert c.storage_bits() == c.perceptron.storage_bits() + c.filter.storage_bits()
