"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "headline" in out
        assert "gcc" in out and "tpcc" in out

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "hardware budgets" in out

    def test_bench_baseline(self, capsys):
        assert main(["bench", "swim", "--system", "baseline", "--branches", "3000"]) == 0
        out = capsys.readouterr().out
        assert "misp_per_kuops" in out

    def test_bench_hybrid_prints_census(self, capsys):
        assert main(
            ["bench", "swim", "--system", "hybrid", "--branches", "3000",
             "--future-bits", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "critique census" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "doom"])


class TestTraceCli:
    def record(self, tmp_path, branches=2500):
        path = tmp_path / "swim.trace"
        assert main(
            ["trace", "record", "swim", "--out", str(path), "--branches", str(branches)]
        ) == 0
        return path

    def test_record_then_info(self, tmp_path, capsys):
        path = self.record(tmp_path)
        out = capsys.readouterr().out
        assert "2500 branches" in out
        assert main(["trace", "info", str(path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "digest" in out and "verified" in out

    def test_record_requires_one_source(self, tmp_path, capsys):
        assert main(["trace", "record", "--out", str(tmp_path / "x.trace")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_record_suite_fills_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(
            ["trace", "record", "--suite", "SERV", "--out", f"{out_dir}/",
             "--branches", "1500"]
        ) == 0
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "timesten.trace", "tpcc.trace",
        ]

    def test_replay_matches_bench_metrics(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", str(path), "--branches", "2000"]) == 0
        replay_out = capsys.readouterr().out
        assert main(
            ["bench", "swim", "--system", "hybrid", "--branches", "2000"]
        ) == 0
        bench_out = capsys.readouterr().out

        def metric(text, key):
            (line,) = [l for l in text.splitlines() if l.strip().startswith(key)]
            return line.split(":")[1].strip()

        # The recorded-then-replayed run reproduces the live run's numbers.
        for key in ("branches", "committed_uops", "mispredicts", "misp_per_kuops"):
            assert metric(replay_out, key) == metric(bench_out, key), key

    def test_replay_uses_cache_across_invocations(self, tmp_path, capsys):
        path = self.record(tmp_path)
        cache_dir = str(tmp_path / "cache")
        args = ["trace", "replay", str(path), "--cache-dir", cache_dir]
        assert main(args) == 0
        assert "1 miss" in capsys.readouterr().err
        assert main(args) == 0  # fresh engine: cross-"process" warm hit
        assert "1 hit" in capsys.readouterr().err

    def test_replay_oracle(self, tmp_path, capsys):
        path = self.record(tmp_path)
        assert main(["trace", "replay", str(path), "--oracle"]) == 0
        assert "oracle replay" in capsys.readouterr().out

    def test_replay_rejects_overlong_window(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", str(path), "--branches", "9999"]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_replay_rejects_degenerate_windows(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", str(path), "--branches", "0"]) == 2
        assert "positive" in capsys.readouterr().err
        assert main(["trace", "replay", str(path), "--warmup", "99999"]) == 2
        assert "measurement window" in capsys.readouterr().err

    def test_record_rejects_nonpositive_branches(self, tmp_path, capsys):
        assert main(
            ["trace", "record", "swim", "--out", str(tmp_path / "x.trace"),
             "--branches", "0"]
        ) == 2
        assert "positive" in capsys.readouterr().err

    def test_oracle_rejects_baseline_system(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(
            ["trace", "replay", str(path), "--oracle", "--system", "baseline"]
        ) == 2
        assert "not applicable" in capsys.readouterr().err

    def test_replay_reports_truncated_body_cleanly(self, tmp_path, capsys):
        path = self.record(tmp_path)
        path.write_bytes(path.read_bytes()[:-80])  # valid header, cut body
        capsys.readouterr()
        assert main(["trace", "replay", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err
        assert main(["trace", "replay", str(path), "--oracle"]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_record_reports_unwritable_destination(self, tmp_path, capsys):
        occupied = tmp_path / "occupied.trace"
        occupied.write_bytes(b"a file, not a directory")
        assert main(
            ["trace", "record", "--suite", "SERV", "--out", str(occupied),
             "--branches", "1500"]
        ) == 1
        assert "cannot write" in capsys.readouterr().err

    def test_info_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.trace"
        bogus.write_bytes(b"not a trace\n")
        assert main(["trace", "info", str(bogus)]) == 1
        assert "INVALID" in capsys.readouterr().err
