"""Tests for the `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "headline" in out
        assert "gcc" in out and "tpcc" in out

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "hardware budgets" in out

    def test_bench_baseline(self, capsys):
        assert main(["bench", "swim", "--system", "baseline", "--branches", "3000"]) == 0
        out = capsys.readouterr().out
        assert "misp_per_kuops" in out

    def test_bench_hybrid_prints_census(self, capsys):
        assert main(
            ["bench", "swim", "--system", "hybrid", "--branches", "3000",
             "--future-bits", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "critique census" in out

    def test_list_includes_predictor_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "predictor kinds" in out
        assert "yags" in out and "prophet-only" in out and "prophet+critic" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "doom"])


class TestConfigCli:
    """`bench --config` and the config-file driven `sweep` verb."""

    def write_config(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_bench_with_system_config(self, tmp_path, capsys):
        config = self.write_config(tmp_path, "sys.json", {
            "kind": "hybrid",
            "prophet": {"kind": "yags", "params": {"choice_entries": 2048}},
            "critic": {"kind": "tagged-gshare", "budget_kb": 2},
            "future_bits": 4,
        })
        assert main(["bench", "swim", "--config", config, "--branches", "3000"]) == 0
        out = capsys.readouterr().out
        assert "yags" in out and "critique census" in out

    def test_bench_config_equals_flag_vocabulary(self, tmp_path, capsys):
        """A config spelling the default hybrid reproduces its numbers."""
        config = self.write_config(tmp_path, "sys.json", {
            "kind": "hybrid",
            "prophet": {"kind": "2bc-gskew", "budget_kb": 8},
            "critic": {"kind": "tagged-gshare", "budget_kb": 8},
            "future_bits": 8,
        })
        assert main(["bench", "swim", "--branches", "3000"]) == 0
        via_flags = capsys.readouterr().out
        assert main(["bench", "swim", "--config", config, "--branches", "3000"]) == 0
        via_config = capsys.readouterr().out
        # Header lines differ (label vs. "hybrid"); metrics must not.
        assert via_flags.splitlines()[1:] == via_config.splitlines()[1:]

    def test_bench_rejects_missing_config(self, tmp_path, capsys):
        assert main(["bench", "swim", "--config", str(tmp_path / "no.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bench_rejects_bad_spec(self, tmp_path, capsys):
        config = self.write_config(
            tmp_path, "sys.json", {"kind": "single", "prophet": "doom"}
        )
        assert main(["bench", "swim", "--config", config]) == 2
        assert "registered kinds" in capsys.readouterr().err

    def test_sweep_grid_with_labels_and_cache(self, tmp_path, capsys):
        systems = self.write_config(tmp_path, "systems.json", {
            "baseline": {"kind": "single", "prophet": ["2bc-gskew", 2]},
            "tage": {"kind": "single", "prophet": {"kind": "tage", "params":
                     {"base_entries": 1024, "component_entries": 128}}},
        })
        cache_dir = str(tmp_path / "cache")
        out_file = tmp_path / "results.json"
        args = ["sweep", "--systems", systems, "--benchmarks", "swim,ammp",
                "--branches", "2000", "--cache-dir", cache_dir,
                "--out", str(out_file)]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "baseline" in captured.out and "tage" in captured.out
        assert "AVG" in captured.out
        assert "4 miss" in captured.err
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert len(payload["cells"]) == 4
        assert all("content_hash" in cell for cell in payload["cells"])
        # Second run: every cell served from the cache.
        assert main(args) == 0
        assert "4 hit" in capsys.readouterr().err

    def test_sweep_list_form_derives_labels(self, tmp_path, capsys):
        systems = self.write_config(tmp_path, "systems.json", [
            {"kind": "single", "prophet": ["gshare", 2]},
            {"kind": "hybrid", "prophet": ["gshare", 2],
             "critic": ["tagged-gshare", 2], "future_bits": 4},
        ])
        assert main(["sweep", "--systems", systems, "--benchmarks", "swim",
                     "--branches", "2000"]) == 0
        out = capsys.readouterr().out
        assert "gshare@2KB" in out
        assert "gshare@2KB+tagged-gshare@2KB@f4" in out

    def test_sweep_accepts_trace_paths_as_benchmarks(self, tmp_path, capsys):
        trace = tmp_path / "swim.trace"
        assert main(["trace", "record", "swim", "--out", str(trace),
                     "--branches", "2000"]) == 0
        systems = self.write_config(
            tmp_path, "systems.json", {"kind": "single", "prophet": ["gshare", 2]}
        )
        capsys.readouterr()
        assert main(["sweep", "--systems", systems, "--benchmarks", str(trace),
                     "--branches", "2000"]) == 0
        assert "swim" in capsys.readouterr().out

    def test_sweep_out_zero_mispredicts_is_strict_json(self, tmp_path, capsys):
        """Regression: a zero-mispredict cell used to serialize
        ``uops_per_flush`` as the invalid JSON token ``Infinity``. The
        payload must round-trip through a parser that rejects the
        non-standard constants."""
        from repro.workloads.behaviors import PatternBehavior
        from repro.workloads.program import BasicBlock, BlockKind, Program
        from repro.workloads.trace import record_trace

        # A single always-taken loop branch: after warmup the counter is
        # saturated and the branch BTB-resident, so mispredicts == 0.
        program = Program(
            name="alwaystaken",
            blocks=[
                BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=0,
                           fallthrough=0, behavior=PatternBehavior("T")),
            ],
            entry=0,
        )
        trace = tmp_path / "alwaystaken.trace"
        record_trace(program, 600, trace)
        systems = self.write_config(
            tmp_path, "systems.json", {"kind": "single", "prophet": ["gshare", 2]}
        )
        out_file = tmp_path / "results.json"
        assert main(["sweep", "--systems", systems, "--benchmarks", str(trace),
                     "--branches", "600", "--out", str(out_file)]) == 0
        capsys.readouterr()
        payload = json.loads(
            out_file.read_text(encoding="utf-8"),
            parse_constant=lambda token: pytest.fail(
                f"non-standard JSON constant {token!r} in --out payload"
            ),
        )
        (cell,) = payload["cells"]
        assert cell["summary"]["mispredicts"] == 0
        assert cell["summary"]["uops_per_flush"] is None

    def test_sweep_rejects_unknown_benchmark(self, tmp_path, capsys):
        systems = self.write_config(
            tmp_path, "systems.json", {"kind": "single", "prophet": ["gshare", 2]}
        )
        assert main(["sweep", "--systems", systems, "--benchmarks", "doom"]) == 2
        assert "known benchmarks" in capsys.readouterr().err

    def test_sweep_rejects_invalid_json(self, tmp_path, capsys):
        bad = tmp_path / "systems.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["sweep", "--systems", str(bad), "--benchmarks", "swim"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_sweep_rejects_prophet_only_critic(self, tmp_path, capsys):
        systems = self.write_config(tmp_path, "systems.json", {
            "bad": {"kind": "hybrid", "prophet": ["gshare", 2],
                    "critic": {"kind": "local"}, "future_bits": 4},
        })
        assert main(["sweep", "--systems", systems, "--benchmarks", "swim"]) == 2
        assert "critic-capable" in capsys.readouterr().err

    def test_bad_geometry_value_is_a_clean_error_not_a_traceback(self, tmp_path, capsys):
        """Geometry *values* are validated by predictor constructors at
        build time; the CLI must surface them as exit-2 config errors."""
        config = self.write_config(tmp_path, "sys.json", {
            "kind": "single",
            "prophet": {"kind": "gshare", "params": {"entries": 1000}},
        })
        assert main(["bench", "swim", "--config", config]) == 2
        assert "power of two" in capsys.readouterr().err
        assert main(["sweep", "--systems", config, "--benchmarks", "swim"]) == 2
        assert "power of two" in capsys.readouterr().err

    def test_sweep_rejects_overlong_window_for_trace(self, tmp_path, capsys):
        trace = tmp_path / "swim.trace"
        assert main(["trace", "record", "swim", "--out", str(trace),
                     "--branches", "1000"]) == 0
        systems = self.write_config(
            tmp_path, "systems.json", {"kind": "single", "prophet": ["gshare", 2]}
        )
        capsys.readouterr()
        assert main(["sweep", "--systems", systems, "--benchmarks", str(trace),
                     "--branches", "2000"]) == 2
        assert "cannot sweep" in capsys.readouterr().err

    def test_sweep_rejects_duplicate_bench_names(self, tmp_path, capsys):
        systems = self.write_config(
            tmp_path, "systems.json", {"kind": "single", "prophet": ["gshare", 2]}
        )
        assert main(["sweep", "--systems", systems, "--benchmarks", "swim,swim",
                     "--branches", "2000"]) == 2
        assert "appears twice" in capsys.readouterr().err


class TestTraceCli:
    def record(self, tmp_path, branches=2500):
        path = tmp_path / "swim.trace"
        assert main(
            ["trace", "record", "swim", "--out", str(path), "--branches", str(branches)]
        ) == 0
        return path

    def test_record_then_info(self, tmp_path, capsys):
        path = self.record(tmp_path)
        out = capsys.readouterr().out
        assert "2500 branches" in out
        assert main(["trace", "info", str(path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "digest" in out and "verified" in out

    def test_record_requires_one_source(self, tmp_path, capsys):
        assert main(["trace", "record", "--out", str(tmp_path / "x.trace")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_record_suite_fills_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(
            ["trace", "record", "--suite", "SERV", "--out", f"{out_dir}/",
             "--branches", "1500"]
        ) == 0
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "timesten.trace", "tpcc.trace",
        ]

    def test_replay_matches_bench_metrics(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", str(path), "--branches", "2000"]) == 0
        replay_out = capsys.readouterr().out
        assert main(
            ["bench", "swim", "--system", "hybrid", "--branches", "2000"]
        ) == 0
        bench_out = capsys.readouterr().out

        def metric(text, key):
            (line,) = [x for x in text.splitlines() if x.strip().startswith(key)]
            return line.split(":")[1].strip()

        # The recorded-then-replayed run reproduces the live run's numbers.
        for key in ("branches", "committed_uops", "mispredicts", "misp_per_kuops"):
            assert metric(replay_out, key) == metric(bench_out, key), key

    def test_replay_uses_cache_across_invocations(self, tmp_path, capsys):
        path = self.record(tmp_path)
        cache_dir = str(tmp_path / "cache")
        args = ["trace", "replay", str(path), "--cache-dir", cache_dir]
        assert main(args) == 0
        assert "1 miss" in capsys.readouterr().err
        assert main(args) == 0  # fresh engine: cross-"process" warm hit
        assert "1 hit" in capsys.readouterr().err

    def test_replay_oracle(self, tmp_path, capsys):
        path = self.record(tmp_path)
        assert main(["trace", "replay", str(path), "--oracle"]) == 0
        assert "oracle replay" in capsys.readouterr().out

    def test_replay_rejects_overlong_window(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", str(path), "--branches", "9999"]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_replay_rejects_degenerate_windows(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", str(path), "--branches", "0"]) == 2
        assert "positive" in capsys.readouterr().err
        assert main(["trace", "replay", str(path), "--warmup", "99999"]) == 2
        assert "measurement window" in capsys.readouterr().err

    def test_record_rejects_nonpositive_branches(self, tmp_path, capsys):
        assert main(
            ["trace", "record", "swim", "--out", str(tmp_path / "x.trace"),
             "--branches", "0"]
        ) == 2
        assert "positive" in capsys.readouterr().err

    def test_oracle_rejects_baseline_system(self, tmp_path, capsys):
        path = self.record(tmp_path)
        capsys.readouterr()
        assert main(
            ["trace", "replay", str(path), "--oracle", "--system", "baseline"]
        ) == 2
        assert "not applicable" in capsys.readouterr().err

    def test_replay_reports_truncated_body_cleanly(self, tmp_path, capsys):
        path = self.record(tmp_path)
        path.write_bytes(path.read_bytes()[:-80])  # valid header, cut body
        capsys.readouterr()
        assert main(["trace", "replay", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err
        assert main(["trace", "replay", str(path), "--oracle"]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_record_reports_unwritable_destination(self, tmp_path, capsys):
        occupied = tmp_path / "occupied.trace"
        occupied.write_bytes(b"a file, not a directory")
        assert main(
            ["trace", "record", "--suite", "SERV", "--out", str(occupied),
             "--branches", "1500"]
        ) == 1
        assert "cannot write" in capsys.readouterr().err

    def test_info_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.trace"
        bogus.write_bytes(b"not a trace\n")
        assert main(["trace", "info", str(bogus)]) == 1
        assert "INVALID" in capsys.readouterr().err
