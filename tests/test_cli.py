"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "headline" in out
        assert "gcc" in out and "tpcc" in out

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "hardware budgets" in out

    def test_bench_baseline(self, capsys):
        assert main(["bench", "swim", "--system", "baseline", "--branches", "3000"]) == 0
        out = capsys.readouterr().out
        assert "misp_per_kuops" in out

    def test_bench_hybrid_prints_census(self, capsys):
        assert main(
            ["bench", "swim", "--system", "hybrid", "--branches", "3000",
             "--future-bits", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "critique census" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "doom"])
