"""Documentation health: doctest examples execute, markdown links resolve.

The same checks run as a dedicated CI docs job; running them in tier-1
keeps documentation regressions visible locally too.
"""

import doctest
import importlib
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The modules whose public-API docstrings carry executable examples
#: (the documentation-audit surface of the trace PR).
DOCTEST_MODULES = [
    "repro.sim.specs",
    "repro.workloads.behaviors",
    "repro.workloads.generator",
    "repro.workloads.program",
    "repro.workloads.suites",
    "repro.workloads.trace",
    "repro.workloads.trace_io",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"


def test_doctest_modules_have_examples():
    """The audit stays meaningful: each listed module keeps >= 1 example."""
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        examples = sum(len(t.examples) for t in finder.find(module))
        assert examples > 0, f"{module_name} lost its doctest examples"


def test_markdown_links_resolve():
    """README + docs/ contain no dangling relative links."""
    checker = REPO_ROOT / "tools" / "check_markdown_links.py"
    completed = subprocess.run(
        [sys.executable, str(checker), "README.md", "docs"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr + completed.stdout


def test_docs_exist_and_mention_their_subjects():
    docs = REPO_ROOT / "docs"
    architecture = (docs / "ARCHITECTURE.md").read_text(encoding="utf-8")
    cli = (docs / "CLI.md").read_text(encoding="utf-8")
    trace_format = (docs / "TRACE_FORMAT.md").read_text(encoding="utf-8")
    # The architecture map ties modules to paper sections.
    for fragment in ("§3", "§5", "§6", "workloads/trace_io.py", "sim/specs.py"):
        assert fragment in architecture, fragment
    # The CLI reference covers every verb and the engine flags.
    for fragment in (
        "trace record", "trace replay", "trace info",
        "--jobs", "--cache-dir", "--no-cache", "--oracle",
    ):
        assert fragment in cli, fragment
    # The format spec pins the version and the digest rule.
    for fragment in ("version 1", "SHA-256", "TraceFormatError"):
        assert fragment in trace_format, fragment
