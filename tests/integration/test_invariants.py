"""Property-based invariants of the whole simulation stack.

Hypothesis drives randomly generated programs and system configurations
through the simulator; these properties must hold for any of them:

* the front end and architectural executor never desync (checked
  internally by simulate — any violation raises);
* replaying the same configuration is bit-identical;
* census totals and mispredict counters are mutually consistent;
* the prophet-alone accuracy of a system is independent of the critic
  attached to it (critics never perturb the prophet's tables).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.predictors import GsharePredictor, TaggedGsharePredictor, TwoBcGskewPredictor
from repro.sim import SimulationConfig, simulate
from repro.workloads.generator import WorkloadProfile, generate_program

SEEDS = st.integers(min_value=1, max_value=50)
FUTURE_BITS = st.sampled_from([0, 1, 3, 8])


def tiny_config(**kw) -> SimulationConfig:
    defaults = dict(n_branches=1200, warmup=200)
    defaults.update(kw)
    return SimulationConfig(**defaults)


def tiny_program(seed: int):
    return generate_program(
        WorkloadProfile(name=f"prop{seed}", seed=seed, static_branch_target=60)
    )


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS, fb=FUTURE_BITS)
def test_simulation_never_desyncs_and_counts_are_consistent(seed, fb):
    system = ProphetCriticSystem(
        GsharePredictor(512, 9),
        TaggedGsharePredictor(sets=32, ways=4, history_length=10),
        future_bits=fb,
    )
    stats = simulate(tiny_program(seed), system, tiny_config())
    assert stats.branches == 1000
    assert stats.census.total == stats.branches - stats.static_branches
    # Final mispredicts = prophet mispredicts - net critic gain (statics
    # counted identically on both sides).
    assert stats.mispredicts == stats.prophet_mispredicts - stats.census.net_gain()
    assert 0 <= stats.mispredicts <= stats.branches


@settings(max_examples=6, deadline=None)
@given(seed=SEEDS, fb=FUTURE_BITS)
def test_simulation_is_deterministic(seed, fb):
    def run():
        system = ProphetCriticSystem(
            TwoBcGskewPredictor(256, 8),
            TaggedGsharePredictor(sets=32, ways=4, history_length=10),
            future_bits=fb,
        )
        return simulate(tiny_program(seed), system, tiny_config())

    a, b = run(), run()
    assert a.mispredicts == b.mispredicts
    assert a.committed_uops == b.committed_uops
    assert a.census.as_dict() == b.census.as_dict()
    assert a.critic_redirects == b.critic_redirects


@settings(max_examples=6, deadline=None)
@given(seed=SEEDS)
def test_critic_never_perturbs_prophet_tables(seed):
    """The prophet's per-branch prediction stream (and hence its stats)
    must be identical with and without a critic attached: critics only
    override downstream, never feed back into prophet state.

    Two legitimate coupling channels are excluded or tolerated:

    * the BTB is disabled (different wrong paths diverge its LRU state);
    * exact per-branch equality is NOT required — when the critic fixes a
      mispredict it also *prevents the flush*, so younger branches are
      predicted before (not after) the older branch's commit-time table
      update; a few predictions near each fixed mispredict may differ.
      What must hold is the absence of systematic feedback: identical
      prediction counts and accuracy within noise.
    """
    alone = SinglePredictorSystem(GsharePredictor(512, 9))
    simulate(tiny_program(seed), alone, tiny_config(use_btb=False))

    hybrid = ProphetCriticSystem(
        GsharePredictor(512, 9),
        TaggedGsharePredictor(sets=32, ways=4, history_length=10),
        future_bits=4,
    )
    simulate(tiny_program(seed), hybrid, tiny_config(use_btb=False))
    assert alone.predictor.stats.predictions == hybrid.prophet.stats.predictions
    drift = abs(alone.predictor.stats.correct - hybrid.prophet.stats.correct)
    assert drift <= max(10, alone.predictor.stats.predictions * 0.02)


@settings(max_examples=6, deadline=None)
@given(seed=SEEDS, depth=st.integers(min_value=4, max_value=64))
def test_inflight_depth_does_not_change_committed_path(seed, depth):
    """Training delay changes predictor accuracy but never the committed
    branch stream (uops and branch counts are architectural facts)."""
    def run(d):
        system = SinglePredictorSystem(GsharePredictor(512, 9))
        return simulate(tiny_program(seed), system, tiny_config(inflight_depth=d))

    a = run(4)
    b = run(depth)
    assert a.committed_uops == b.committed_uops
    assert a.taken_branches == b.taken_branches
