"""Integration test: the paper's Figure 2 mechanism, end to end.

The paper's §3.1 example: branch A is mispredicted by the prophet; the
predictions for the branches that follow (the branch future) let the
critic recognise the situation and override next time.

We build the sharpest honest version of that scenario:

* ``main`` flips a coin (invisible bias 0.5) and calls function ``f``
  from one of two call sites; each call site has its own distinctive
  continuation code (different branch patterns after the return);
* ``f`` runs a 12-iteration loop — which flushes any short history
  register — and then executes branch **A**, whose outcome depends on
  the *caller*;
* consequently the prophet (4-bit-history gshare) sees an identical
  history at every instance of A and is reduced to guessing, while the
  critic's **future bits** span A, its side block, the return, and the
  caller's continuation — whose predictions reveal the caller.

This is exactly the taxi analogy: you can't tell where you are from the
road behind (the loop wiped it), but the streets ahead identify the
neighbourhood. With 0 future bits the critic sees only the loop's
constant bits and cannot help; with 4 it fixes branch A.
"""

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.core.critiques import CritiqueKind
from repro.predictors import BimodalPredictor, TaggedGsharePredictor
from repro.sim import SimulationConfig, simulate
from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    CallerCorrelatedBehavior,
    ExecutionContext,
    LoopBehavior,
    PatternBehavior,
)
from repro.workloads.program import BasicBlock, BlockKind, Program

CALL_SITE_1 = 1
CALL_SITE_2 = 2
BRANCH_A_PC = 0x2020


def _salt_with_differing_directions() -> int:
    """Pick a salt where the two call sites give A opposite directions."""
    for salt in range(100):
        behavior = CallerCorrelatedBehavior(salt=salt)
        ctx = ExecutionContext(seed=20)
        ctx.caller_stack = [CALL_SITE_1]
        a = behavior.resolve(BRANCH_A_PC, ctx)
        ctx.caller_stack = [CALL_SITE_2]
        b = behavior.resolve(BRANCH_A_PC, ctx)
        if a != b:
            return salt
    raise AssertionError("no differing salt found")


def figure2_program() -> Program:
    salt = _salt_with_differing_directions()
    blocks = [
        # main: coin-flip chooses the call site.
        BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1, fallthrough=2,
                   behavior=BiasedRandomBehavior(0.5)),
        BasicBlock(1, 0x1010, 3, BlockKind.CALL, taken_target=20, fallthrough=3),
        BasicBlock(2, 0x1020, 3, BlockKind.CALL, taken_target=20, fallthrough=5),
        # call site 1 continuation: pattern T, T.
        BasicBlock(3, 0x1030, 3, BlockKind.COND, taken_target=4, fallthrough=4,
                   behavior=PatternBehavior("T")),
        BasicBlock(4, 0x1040, 3, BlockKind.COND, taken_target=7, fallthrough=7,
                   behavior=PatternBehavior("T")),
        # call site 2 continuation: pattern N, N.
        BasicBlock(5, 0x1050, 3, BlockKind.COND, taken_target=6, fallthrough=6,
                   behavior=PatternBehavior("N")),
        BasicBlock(6, 0x1060, 3, BlockKind.COND, taken_target=7, fallthrough=7,
                   behavior=PatternBehavior("N")),
        BasicBlock(7, 0x1070, 4, BlockKind.JUMP, taken_target=0),
        # callee f: a 12-trip loop flushes short histories...
        BasicBlock(20, 0x2000, 3, BlockKind.JUMP, taken_target=21),
        BasicBlock(21, 0x2010, 4, BlockKind.COND, taken_target=20, fallthrough=22,
                   behavior=LoopBehavior(trip_count=12)),
        # ...then branch A: outcome fixed per caller.
        BasicBlock(22, BRANCH_A_PC, 4, BlockKind.COND, taken_target=23, fallthrough=24,
                   behavior=CallerCorrelatedBehavior(salt=salt)),
        BasicBlock(23, 0x2030, 3, BlockKind.COND, taken_target=25, fallthrough=25,
                   behavior=PatternBehavior("T")),   # side X
        BasicBlock(24, 0x2040, 3, BlockKind.COND, taken_target=25, fallthrough=25,
                   behavior=PatternBehavior("N")),   # side Y
        BasicBlock(25, 0x2050, 2, BlockKind.RETURN),
    ]
    return Program(name="figure2", blocks=blocks, entry=0, seed=20)


def make_config(**kw) -> SimulationConfig:
    defaults = dict(n_branches=12000, warmup=4000, use_btb=False, collect_per_site=True)
    defaults.update(kw)
    return SimulationConfig(**defaults)


def make_hybrid(fb: int) -> ProphetCriticSystem:
    # A PC-indexed (bimodal) prophet keeps the continuation predictions
    # trained on both paths; a long-history prophet would hand the critic
    # untrained (constant) wrong-path bits in this tiny program. Any
    # predictor can play the prophet (§6).
    return ProphetCriticSystem(
        BimodalPredictor(4096),
        TaggedGsharePredictor(sets=256, ways=6, history_length=12),
        future_bits=fb,
    )


class TestFigure2Scenario:
    def test_prophet_alone_systematically_mispredicts_a(self):
        stats = simulate(
            figure2_program(), SinglePredictorSystem(BimodalPredictor(4096)), make_config()
        )
        row = stats.per_site[BRANCH_A_PC]
        # A's outcome depends only on the (invisible) caller: the prophet guesses.
        assert row[1] > row[0] * 0.25, f"A should be hard: {row}"

    def test_critic_with_future_bits_fixes_a(self):
        stats = simulate(figure2_program(), make_hybrid(4), make_config())
        row = stats.per_site[BRANCH_A_PC]
        prophet_misp, final_misp = row[1], row[2]
        assert prophet_misp > 0
        assert final_misp <= prophet_misp * 0.05, (
            f"critic fixed too little of A: prophet={prophet_misp}, final={final_misp}"
        )

    def test_zero_future_bits_cannot_fix_a(self):
        """With fb=0 the critic's BOR holds only the loop's constant bits
        — conventional-hybrid timing cannot rescue branch A."""
        fb0 = simulate(figure2_program(), make_hybrid(0), make_config())
        fb4 = simulate(figure2_program(), make_hybrid(4), make_config())
        a_fb0 = fb0.per_site[BRANCH_A_PC][2]
        a_fb4 = fb4.per_site[BRANCH_A_PC][2]
        assert a_fb4 < a_fb0 * 0.1, f"future bits should matter: fb0={a_fb0}, fb4={a_fb4}"

    def test_wins_dominate_damage(self):
        stats = simulate(figure2_program(), make_hybrid(4), make_config())
        won = stats.census.counts[CritiqueKind.INCORRECT_DISAGREE]
        lost = stats.census.counts[CritiqueKind.CORRECT_DISAGREE]
        assert won > 2 * lost

    def test_overall_mispredicts_drop(self):
        base = simulate(
            figure2_program(), SinglePredictorSystem(BimodalPredictor(4096)), make_config()
        )
        hyb = simulate(figure2_program(), make_hybrid(4), make_config())
        assert hyb.mispredicts < base.mispredicts * 0.8
