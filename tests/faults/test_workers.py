"""Crash-injection plumbing: arming, token budget, selector matching.

``maybe_crash`` calls ``os._exit`` when it fires, so the firing path is
exercised in *subprocesses* (and end-to-end in ``test_chaos.py``); here
the in-process tests drive everything up to the exit — plan caching,
the atomic token budget, and the poison selectors — plus real child
processes for the exit itself.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.faults.plan import FaultPlan, WorkerFaults
from repro.faults.workers import (
    ENV_PLAN,
    ENV_STATE,
    _claim_crash_token,
    crashes_injected,
    maybe_crash,
    reset_for_tests,
)
from repro.sim import SimulationConfig
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _cell(bench="swim", label="gshare-2") -> SweepCell:
    return SweepCell(
        label, bench, SystemSpec.single("gshare", 2),
        ProgramSpec(benchmark=bench), SimulationConfig(n_branches=100, warmup=20),
    )


class TestUnarmed:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_PLAN, raising=False)
        reset_for_tests()
        maybe_crash(_cell())  # must simply return

    def test_bad_plan_file_injects_nothing(self, monkeypatch, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json", encoding="utf-8")
        monkeypatch.setenv(ENV_PLAN, str(path))
        reset_for_tests()
        maybe_crash(_cell())  # a bad plan never takes down real work

    def test_armed_without_state_dir_never_crashes(self, arm_faults, monkeypatch):
        # The state dir is the budget; no budget, no crashes — an
        # inherited REPRO_FAULTS alone cannot kill a worker.
        arm_faults(FaultPlan(seed=1, worker=WorkerFaults(crash_at_cell=1)))
        monkeypatch.delenv(ENV_STATE)
        reset_for_tests()
        maybe_crash(_cell())


class TestTokenBudget:
    def test_tokens_are_claimed_exactly_budget_times(self, arm_faults):
        state_dir = arm_faults(FaultPlan(seed=1, worker=WorkerFaults(crashes=3)))
        assert [_claim_crash_token(3) for _ in range(5)] == [
            True, True, True, False, False,
        ]
        assert crashes_injected() == 3
        assert crashes_injected(str(state_dir)) == 3

    def test_zero_budget_claims_nothing(self, arm_faults):
        arm_faults(FaultPlan(seed=1, worker=WorkerFaults(crashes=0)))
        assert not _claim_crash_token(0)
        assert crashes_injected() == 0

    def test_missing_state_dir_counts_zero(self, tmp_path):
        assert crashes_injected(str(tmp_path / "nowhere")) == 0


class TestSelectors:
    def test_selector_skips_non_matching_cells(self, arm_faults):
        plan = FaultPlan(
            seed=1,
            worker=WorkerFaults(crash_at_cell=1, benchmark="gcc", system="other"),
        )
        arm_faults(plan)
        for _ in range(5):
            maybe_crash(_cell(bench="swim", label="gshare-2"))
        assert crashes_injected() == 0

    def test_positional_trigger_skips_until_nth_cell(self, arm_faults):
        arm_faults(FaultPlan(seed=1, worker=WorkerFaults(crash_at_cell=50)))
        for _ in range(10):
            maybe_crash(_cell())  # cells 1..10 of 50: never fires
        assert crashes_injected() == 0


class TestRealExit:
    def _run_child(self, plan: FaultPlan, tmp_path, bench="swim") -> int:
        plan_path = tmp_path / "plan.json"
        plan.dump(plan_path)
        state_dir = tmp_path / "state"
        state_dir.mkdir(exist_ok=True)
        env = dict(os.environ)
        env.update({
            ENV_PLAN: str(plan_path),
            ENV_STATE: str(state_dir),
            "PYTHONPATH": SRC,
        })
        script = (
            "from repro.faults.workers import maybe_crash\n"
            "from repro.sim import SimulationConfig\n"
            "from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec\n"
            f"cell = SweepCell('gshare-2', {bench!r}, SystemSpec.single('gshare', 2),\n"
            f"                 ProgramSpec(benchmark={bench!r}),\n"
            "                 SimulationConfig(n_branches=100, warmup=20))\n"
            "maybe_crash(cell)\n"
            "print('survived')\n"
        )
        return subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        ).returncode

    def test_worker_process_exits_with_the_plan_code(self, tmp_path):
        plan = FaultPlan(seed=1, worker=WorkerFaults(crash_at_cell=1, exit_code=87))
        assert self._run_child(plan, tmp_path) == 87
        assert crashes_injected(str(tmp_path / "state")) == 1

    def test_exhausted_budget_lets_the_worker_live(self, tmp_path):
        plan = FaultPlan(seed=1, worker=WorkerFaults(crash_at_cell=1, crashes=1))
        assert self._run_child(plan, tmp_path) != 0  # claims the only token
        assert self._run_child(plan, tmp_path) == 0  # budget spent: survives
        assert crashes_injected(str(tmp_path / "state")) == 1
