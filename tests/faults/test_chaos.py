"""run_chaos_sweep: differential proof that recovery is lossless."""

from __future__ import annotations

import json

import pytest

from repro.faults.chaos import ChaosReport, run_chaos_sweep
from repro.faults.plan import CacheFaults, FaultPlan, WorkerFaults


class TestChaosReport:
    def test_overhead_guards_zero_reference(self):
        report = ChaosReport(plan={}, cells=0, identical=True)
        assert report.recovery_overhead == 0.0

    def test_summary_flags_mismatches(self):
        report = ChaosReport(
            plan={}, cells=4, identical=False,
            mismatches=[{"system": "s", "benchmark": "b", "content_hash": "x"}],
            reference_seconds=1.0, chaos_seconds=2.0,
        )
        assert "MISMATCH" in report.summary()
        assert "2.00x" in report.summary()

    def test_to_config_is_json_safe(self):
        report = ChaosReport(plan={"seed": 1}, cells=2, identical=True)
        document = json.loads(json.dumps(report.to_config()))
        assert document["identical"] is True
        assert document["recovery_overhead"] == 0.0


class TestWorkerCrashRecovery:
    def test_killed_worker_is_contained_and_results_match(self, small_cells):
        plan = FaultPlan(seed=7, worker=WorkerFaults(crash_at_cell=1, crashes=1))
        report = run_chaos_sweep(small_cells, plan, jobs=2)
        assert report.crashes_injected == 1
        assert report.recovery["worker_crashes"] >= 1
        assert report.quarantined == []
        assert report.identical and report.mismatches == []

    def test_repeat_crasher_is_retried_within_budget(self, small_cells):
        # Two crash tokens pinned to one cell: the containment re-run
        # crashes once more, the bounded retry absorbs it, and the cell
        # still completes (cells_retried counts that second attempt).
        plan = FaultPlan(
            seed=7,
            worker=WorkerFaults(
                crash_at_cell=1, crashes=2,
                benchmark="swim", system="gshare-2",
            ),
        )
        report = run_chaos_sweep(small_cells, plan, jobs=2)
        assert report.crashes_injected == 2
        assert report.recovery["cells_retried"] >= 1
        assert report.quarantined == []
        assert report.identical and report.mismatches == []

    def test_poison_cell_is_quarantined_and_the_rest_survive(self, small_cells):
        # More crashes than the retry budget, pinned to one benchmark:
        # both swim cells must be quarantined, both gcc cells must still
        # match the fault-free reference bit-for-bit.
        plan = FaultPlan(
            seed=7,
            worker=WorkerFaults(crash_at_cell=1, crashes=10, benchmark="swim"),
        )
        report = run_chaos_sweep(small_cells, plan, jobs=2)
        assert len(report.quarantined) == 2
        assert {q["benchmark"] for q in report.quarantined} == {"swim"}
        assert all(q["kind"] == "worker-crash" for q in report.quarantined)
        assert report.recovery["cells_quarantined"] == 2
        assert report.identical and report.mismatches == []

    def test_worker_plan_refuses_serial_execution(self, small_cells):
        plan = FaultPlan(seed=1, worker=WorkerFaults())
        with pytest.raises(ValueError, match="jobs >= 2"):
            run_chaos_sweep(small_cells, plan, jobs=1)


class TestCacheFaultRecovery:
    def test_cache_chaos_is_bit_identical(self, small_cells, tmp_path):
        plan = FaultPlan(
            seed=11,
            cache=CacheFaults(
                transient_error_p=0.3, drop_put_p=0.3,
                corrupt_get_p=0.3, corrupt_mode="flip",
            ),
        )
        report = run_chaos_sweep(
            small_cells, plan, jobs=1, cache_dir=tmp_path / "cache"
        )
        assert report.identical and report.quarantined == []
        assert report.injections is not None
        assert report.injections["seed"] == 11
        assert report.crashes_injected == 0

    def test_same_plan_same_injection_schedule(self, small_cells, tmp_path):
        def run(label):
            plan = FaultPlan(
                seed=13,
                cache=CacheFaults(transient_error_p=0.4, drop_put_p=0.4),
            )
            report = run_chaos_sweep(
                small_cells, plan, jobs=1, cache_dir=tmp_path / label
            )
            return report.injections["counts"], report.injections["events"]

        assert run("a") == run("b")

    def test_report_serialises_for_the_ci_artifact(self, small_cells, tmp_path):
        plan = FaultPlan(seed=3, cache=CacheFaults(drop_put_p=1.0))
        report = run_chaos_sweep(
            small_cells, plan, jobs=1, cache_dir=tmp_path / "cache"
        )
        document = json.loads(json.dumps(report.to_config()))
        assert document["cells"] == len(small_cells)
        assert document["plan"]["cache"]["drop_put_p"] == 1.0
        assert document["recovery"]["corrupt_evictions"] == 0
