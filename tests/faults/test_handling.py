"""degrade(): the accounted-for swallow (REP006's escape hatch)."""

from __future__ import annotations

import logging

import pytest

from repro.faults.handling import (
    clear_degradations,
    degrade,
    recent_degradations,
)


@pytest.fixture(autouse=True)
def _fresh_ring():
    clear_degradations()
    yield
    clear_degradations()


class TestDegrade:
    def test_records_and_returns_the_exception(self):
        exc = OSError("disk went away")
        assert degrade(exc, "flushing cache") is exc
        (entry,) = recent_degradations()
        assert entry["context"] == "flushing cache"
        assert "disk went away" in entry["error"]

    def test_logs_a_warning(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.faults"):
            degrade(ValueError("odd"), "parsing entry")
        assert any("parsing entry" in r.message for r in caplog.records)

    def test_reraises_keyboard_interrupt_by_default(self):
        with pytest.raises(KeyboardInterrupt):
            degrade(KeyboardInterrupt(), "anywhere")
        assert recent_degradations() == []

    def test_reraises_system_exit_by_default(self):
        with pytest.raises(SystemExit):
            degrade(SystemExit(1), "anywhere")

    def test_reraise_override_for_thread_boundaries(self):
        # start_daemon's thread must capture even interrupts into the
        # failure channel instead of dying silently off-main-thread.
        exc = KeyboardInterrupt()
        assert degrade(exc, "daemon thread", reraise=()) is exc
        assert len(recent_degradations()) == 1

    def test_ring_is_bounded(self):
        for index in range(300):
            degrade(ValueError(str(index)), "loop")
        ring = recent_degradations()
        assert len(ring) == 256
        assert ring[-1]["error"].endswith("299")
