"""Daemon under chaos: quarantine rows, job timeouts, cache eviction.

End-to-end counterparts of the chaos harness: a real daemon booted with
``ServeConfig(fault_plan=...)`` over real HTTP, proving the service
degrades per-cell (never per-job), enforces wall-clock budgets, and
keeps serving afterwards.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse

import pytest

from repro.serve import ServeConfig, SweepClient, start_daemon

SYSTEMS = {
    "gshare": {"kind": "single", "prophet": {"kind": "gshare", "budget_kb": 2}},
    "gskew": {"kind": "single", "prophet": {"kind": "2bc-gskew", "budget_kb": 4}},
}


def _payload(**overrides):
    payload = {
        "systems": SYSTEMS,
        "benchmarks": "swim,gcc",
        "branches": 800,
        "warmup": 160,
    }
    payload.update(overrides)
    return payload


def _plan(tmp_path, document: dict):
    path = tmp_path / "fault-plan.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


@pytest.fixture
def chaos_daemon(tmp_path):
    """Factory: boot a daemon with the given ServeConfig overrides."""
    handles = []

    def boot(**overrides):
        config = ServeConfig(
            port=0, cache_url=str(tmp_path / "cache"), **overrides
        )
        handle = start_daemon(config)
        handles.append(handle)
        return handle

    yield boot
    for handle in handles:
        handle.stop()


class TestQuarantineOverHTTP:
    def test_poison_cells_fail_the_row_not_the_job(self, tmp_path, chaos_daemon):
        plan = _plan(tmp_path, {
            "seed": 5,
            "worker": {"crash_at_cell": 1, "crashes": 10, "benchmark": "swim"},
        })
        handle = chaos_daemon(jobs=2, fault_plan=plan)
        client = SweepClient(handle.url)

        job = client.submit_payload(_payload())
        status = client.wait(job, timeout=180)
        assert status["state"] == "done"  # the job survives its poison cells
        assert status["cells_failed"] == 2

        rows = client.results(job)  # only rows that carry a result
        assert {(label, bench) for label, bench, _ in rows} == {
            ("gshare", "gcc"), ("gskew", "gcc"),
        }

        result = client.sweep_result(job)
        assert set(result.failures) == {("gshare", "swim"), ("gskew", "swim")}
        for label in SYSTEMS:
            failure = result.failures[(label, "swim")]
            assert failure["kind"] == "worker-crash"
            assert failure["attempts"] == 3  # initial + the bounded retries
        with pytest.raises(KeyError, match="quarantine"):
            result.get("gshare", "swim")

        stats = client.stats()
        assert stats["cells_quarantined"] == 2
        assert stats["worker_crashes"] >= 1
        assert stats["jobs_done"] == 1 and stats["jobs_failed"] == 0

    def test_daemon_still_serves_after_quarantine(self, tmp_path, chaos_daemon):
        plan = _plan(tmp_path, {
            "seed": 5,
            "worker": {"crash_at_cell": 1, "crashes": 3, "benchmark": "swim"},
        })
        handle = chaos_daemon(jobs=2, fault_plan=plan)
        client = SweepClient(handle.url)
        first = client.wait(client.submit_payload(_payload()), timeout=180)
        assert first["state"] == "done"
        # Crash tokens are spent; the same grid now completes cleanly and
        # the healthy cells come straight from the shared cache.
        second = client.wait(client.submit_payload(_payload()), timeout=180)
        assert second["state"] == "done"
        assert second["cells_failed"] == 0


class TestJobTimeout:
    def test_runaway_job_is_failed_and_the_daemon_moves_on(
        self, tmp_path, chaos_daemon
    ):
        handle = chaos_daemon(jobs=2, job_timeout=0.3)
        client = SweepClient(handle.url)

        runaway = client.submit_payload(_payload(branches=400000, warmup=1000))
        status = client.wait(runaway, timeout=300)
        assert status["state"] == "failed"
        assert status["error"]["timeout_seconds"] == 0.3
        assert "wall-clock" in status["error"]["error"]

        stats = client.stats()
        assert stats["jobs_timed_out"] == 1

        follow_up = client.submit_payload(_payload(branches=400))
        assert client.wait(follow_up, timeout=180)["state"] == "done"


class TestCacheChaosOverHTTP:
    def test_faulty_cache_never_changes_results(self, tmp_path, chaos_daemon):
        plan = _plan(tmp_path, {
            "seed": 4,
            "cache": {
                "transient_error_p": 0.3, "drop_put_p": 0.3,
                "corrupt_get_p": 0.3, "corrupt_mode": "flip",
            },
        })
        handle = chaos_daemon(jobs=1, fault_plan=plan)
        client = SweepClient(handle.url)

        first = client.submit_payload(_payload())
        assert client.wait(first, timeout=180)["state"] == "done"
        # Second pass reads a populated (and now misbehaving) cache.
        second = client.submit_payload(_payload())
        assert client.wait(second, timeout=180)["state"] == "done"

        from repro.sim.cache import encode_result

        rows_a = {(s, b): r for s, b, r in client.results(first)}
        rows_b = {(s, b): r for s, b, r in client.results(second)}
        assert rows_a.keys() == rows_b.keys() and len(rows_a) == 4
        for key, result in rows_a.items():
            assert encode_result(result) == encode_result(rows_b[key])

        stats = client.stats()
        assert stats["faults"]["seed"] == 4
        assert "cache_corrupt_evictions" in stats


class TestCacheDelete:
    def test_delete_evicts_an_entry_idempotently(self, tmp_path, chaos_daemon):
        handle = chaos_daemon(jobs=1)
        parsed = urllib.parse.urlparse(handle.url)
        key = "ab" * 32

        def request(method, body=None):
            conn = http.client.HTTPConnection(parsed.hostname, parsed.port)
            try:
                conn.request(method, f"/cache/{key}", body=body)
                response = conn.getresponse()
                return response.status, response.read()
            finally:
                conn.close()

        assert request("PUT", b"opaque-bytes")[0] in (200, 204)
        assert request("GET")[1] == b"opaque-bytes"
        assert request("DELETE")[0] == 204
        assert request("GET")[0] == 404
        assert request("DELETE")[0] == 204  # eviction is idempotent
