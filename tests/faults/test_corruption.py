"""Corruption sweep: every offset class, both stores, never a crash.

Satellite of the PR-10 hardening: flip/truncate bytes at every
structurally distinct offset of (a) a :class:`LocalDirBackend` result
entry and (b) a :class:`TraceColumnStore` RTRC record, then prove the
read path detects the damage, evicts the entry, and a recompute returns
bit-identical results — under both simulation kernels.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import ResultCache, SimulationConfig, run_cell
from repro.sim.cache import (
    LocalDirBackend,
    TraceColumnStore,
    decode_trace_columns,
    encode_trace_columns,
    stats_to_dict,
    trace_cache_key,
)
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec


def _cell(backend: str) -> SweepCell:
    config = SimulationConfig(n_branches=600, warmup=120, backend=backend)
    return SweepCell(
        "gshare-2", "swim", SystemSpec.single("gshare", 2),
        ProgramSpec(benchmark="swim"), config,
    )


def _flip(path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestResultEntryCorruption:
    """LocalDirBackend JSON entries: header, payload, checksum, truncation."""

    def _offsets(self, raw: bytes) -> dict[str, int]:
        """One representative offset per structural region of the entry."""
        text = raw.decode("utf-8")
        return {
            "header": text.index('"type"') + 2,
            "payload": text.index('"payload"') + len('"payload"') + 4,
            "key_field": text.index('"key"') + len('"key"') + 4,
            "checksum": text.index('"checksum"') + len('"checksum"') + 4,
        }

    @pytest.mark.parametrize(
        "region", ["header", "payload", "key_field", "checksum"]
    )
    def test_flipped_byte_evicts_and_recomputes_identically(
        self, tmp_path, kernel_backend, region
    ):
        cell = _cell(kernel_backend)
        key = cell.content_hash()
        reference = run_cell(cell)

        cache = ResultCache(LocalDirBackend(tmp_path))
        cache.put(key, reference)
        path = cache.path_for(key)
        _flip(path, self._offsets(path.read_bytes())[region])

        assert cache.get(key) is None  # never served, never crashed
        assert cache.corrupt_evictions == 1
        assert not path.exists()  # evicted on detection

        recomputed = run_cell(cell)
        cache.put(key, recomputed)
        fetched = cache.get(key)
        assert fetched is not None
        assert stats_to_dict(fetched) == stats_to_dict(reference)

    def test_truncated_entry_is_evicted(self, tmp_path, kernel_backend):
        cell = _cell(kernel_backend)
        key = cell.content_hash()
        cache = ResultCache(LocalDirBackend(tmp_path))
        cache.put(key, run_cell(cell))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])

        assert cache.get(key) is None
        assert cache.corrupt_evictions == 1
        assert not path.exists()

    def test_swapped_entry_under_wrong_key_is_rejected(self, tmp_path):
        # A structurally valid entry filed under the wrong key (a rename
        # gone wrong) must fail the key-field check, not serve bad data.
        cell = _cell("scalar")
        key = cell.content_hash()
        other = "f" * 64
        cache = ResultCache(LocalDirBackend(tmp_path))
        cache.put(key, run_cell(cell))
        cache.backend.put_bytes(other, cache.path_for(key).read_bytes())
        assert cache.get(other) is None
        assert cache.corrupt_evictions == 1

    def test_checksumless_legacy_entry_still_hits(self, tmp_path):
        # Pre-PR-10 entries carry no checksum; they must keep hitting.
        cell = _cell("scalar")
        key = cell.content_hash()
        cache = ResultCache(LocalDirBackend(tmp_path))
        cache.put(key, run_cell(cell))
        path = cache.path_for(key)
        document = json.loads(path.read_bytes())
        document.pop("checksum")
        path.write_bytes(json.dumps(document, separators=(",", ":")).encode())
        assert cache.get(key) is not None
        assert cache.corrupt_evictions == 0


class TestTraceRecordCorruption:
    """RTRC records: magic, version/count header, digest, body, truncation."""

    def _cols(self, n: int):
        t_pc = [100 + 8 * i for i in range(n)]
        t_tk = [i % 2 == 0 for i in range(n)]
        t_uops = [4] * n
        t_tt = [200 + 8 * i for i in range(n)]
        t_ft = [108 + 8 * i for i in range(n)]
        t_snap = [tuple(range(i % 3)) for i in range(n)]
        return (t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)

    #: offset 0 = magic, 5 = version/count header, 13 = digest, -4 = body
    @pytest.mark.parametrize("offset", [0, 5, 13, -4])
    def test_flipped_byte_raises_value_error(self, offset):
        blob = bytearray(encode_trace_columns(4, self._cols(4)))
        blob[offset] ^= 0xFF
        with pytest.raises(ValueError):
            decode_trace_columns(bytes(blob))

    def test_truncation_raises_value_error(self):
        blob = encode_trace_columns(4, self._cols(4))
        for cut in (3, 11, 20, len(blob) - 5):
            with pytest.raises(ValueError):
                decode_trace_columns(blob[:cut])

    def test_store_evicts_corrupt_record_and_reserves_fresh_put(self, tmp_path):
        store = TraceColumnStore(LocalDirBackend(tmp_path))
        cols = self._cols(6)
        store.put("buildkey", 6, cols)
        key = trace_cache_key("buildkey")
        backend = store.backend

        damaged = bytearray(backend.get_bytes(key))
        damaged[-3] ^= 0xFF
        backend.put_bytes(key, bytes(damaged))

        assert store.get("buildkey", 6) is None  # detected, not served
        assert store.corrupt_evictions == 1
        assert backend.get_bytes(key) is None  # evicted

        store.put("buildkey", 6, cols)  # recompute path repopulates
        stored_n, fetched = store.get("buildkey", 6)
        assert stored_n == 6
        assert fetched[0] == cols[0] and fetched[3] == cols[3]

    def test_round_trip_is_lossless(self):
        cols = self._cols(5)
        stored_n, out = decode_trace_columns(encode_trace_columns(5, cols))
        assert stored_n == 5
        assert out[0] == cols[0]
        assert out[1] == cols[1]
        assert [tuple(s) for s in out[5]] == [tuple(s) for s in cols[5]]
