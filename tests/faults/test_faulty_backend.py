"""FaultyBackend: scheduled misbehaviour, deterministic and reported."""

from __future__ import annotations

import pytest

from repro.faults.backend import FaultyBackend, corrupt_bytes
from repro.faults.plan import CacheFaults, FaultPlan, PeerFaults
from repro.sim.cache import CacheBackendError, LocalDirBackend

KEY = "ab" + "0" * 62


def _backend(tmp_path, plan: FaultPlan) -> FaultyBackend:
    return FaultyBackend(LocalDirBackend(tmp_path / "store"), plan)


class TestCorruptBytes:
    def test_flip_changes_exactly_one_byte(self):
        plan = FaultPlan(seed=1)
        payload = bytes(range(64))
        damaged = corrupt_bytes(payload, "flip", plan.stream("cache"))
        assert len(damaged) == len(payload)
        assert sum(a != b for a, b in zip(payload, damaged)) == 1

    def test_truncate_shortens(self):
        plan = FaultPlan(seed=1)
        payload = bytes(range(64))
        damaged = corrupt_bytes(payload, "truncate", plan.stream("cache"))
        assert len(damaged) < len(payload)
        assert payload.startswith(damaged)

    def test_garbage_keeps_length(self):
        plan = FaultPlan(seed=1)
        payload = bytes(range(64))
        damaged = corrupt_bytes(payload, "garbage", plan.stream("cache"))
        assert len(damaged) == len(payload) and damaged != payload

    def test_deterministic_per_stream(self):
        payload = bytes(range(64))
        a = corrupt_bytes(payload, "flip", FaultPlan(seed=5).stream("cache"))
        b = corrupt_bytes(payload, "flip", FaultPlan(seed=5).stream("cache"))
        assert a == b

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="smash"):
            corrupt_bytes(b"x", "smash", FaultPlan(seed=1).stream("cache"))


class TestCacheFaults:
    def test_transient_errors_fire_and_are_counted(self, tmp_path):
        plan = FaultPlan(seed=3, cache=CacheFaults(transient_error_p=1.0))
        backend = _backend(tmp_path, plan)
        with pytest.raises(CacheBackendError, match="injected transient"):
            backend.get_bytes(KEY)
        assert backend.counts["transient_error"] == 1
        assert backend.report()["counts"] == {"transient_error": 1}

    def test_dropped_put_leaves_no_entry(self, tmp_path):
        plan = FaultPlan(seed=3, cache=CacheFaults(drop_put_p=1.0))
        backend = _backend(tmp_path, plan)
        backend.put_bytes(KEY, b"payload")
        assert backend.counts["dropped_put"] == 1
        assert backend.inner.get_bytes(KEY) is None

    def test_corrupt_get_damages_fetched_bytes_only(self, tmp_path):
        plan = FaultPlan(
            seed=3, cache=CacheFaults(corrupt_get_p=1.0, corrupt_mode="flip")
        )
        backend = _backend(tmp_path, plan)
        backend.put_bytes(KEY, b"pristine-bytes")
        assert backend.inner.get_bytes(KEY) == b"pristine-bytes"  # disk intact
        assert backend.get_bytes(KEY) != b"pristine-bytes"
        assert backend.counts["corrupt_get"] == 1

    def test_same_seed_same_schedule(self, tmp_path):
        def run(seed_dir):
            plan = FaultPlan(
                seed=9, cache=CacheFaults(transient_error_p=0.5, drop_put_p=0.5)
            )
            backend = FaultyBackend(LocalDirBackend(seed_dir), plan)
            outcomes = []
            for index in range(20):
                key = f"{index:02x}" + "0" * 62
                try:
                    backend.put_bytes(key, b"v")
                    outcomes.append("put")
                except CacheBackendError:
                    outcomes.append("error")
            return outcomes, dict(backend.counts)

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second

    def test_discard_is_never_injected(self, tmp_path):
        plan = FaultPlan(seed=3, cache=CacheFaults(transient_error_p=1.0))
        backend = _backend(tmp_path, plan)
        backend.discard(KEY)  # must not raise: eviction is recovery
        assert backend.counts == {}


class TestPeerFaults:
    def test_blackhole_recovers_after_n_ops(self, tmp_path):
        plan = FaultPlan(seed=2, peer=PeerFaults(mode="blackhole", recover_after=3))
        backend = _backend(tmp_path, plan)
        for _ in range(3):
            with pytest.raises(CacheBackendError, match="black-holed"):
                backend.get_bytes(KEY)
        assert backend.get_bytes(KEY) is None  # recovered: a plain miss
        assert backend.counts["peer_blackhole"] == 3

    def test_blackhole_without_recovery_faults_forever(self, tmp_path):
        plan = FaultPlan(seed=2, peer=PeerFaults(mode="blackhole"))
        backend = _backend(tmp_path, plan)
        for _ in range(10):
            with pytest.raises(CacheBackendError):
                backend.put_bytes(KEY, b"v")

    def test_slow_peer_records_but_succeeds(self, tmp_path):
        plan = FaultPlan(seed=2, peer=PeerFaults(mode="slow", delay=0.0))
        backend = _backend(tmp_path, plan)
        backend.put_bytes(KEY, b"v")
        assert backend.inner.get_bytes(KEY) == b"v"
        assert backend.counts["peer_slow"] == 1


class TestReport:
    def test_event_list_is_bounded(self, tmp_path):
        plan = FaultPlan(seed=2, peer=PeerFaults(mode="slow", delay=0.0))
        backend = _backend(tmp_path, plan)
        for index in range(250):
            backend.put_bytes(f"{index % 16:x}" + "e" * 63, b"v")
        report = backend.report()
        assert report["counts"]["peer_slow"] == 250
        assert len(report["events"]) == 200

    def test_location_names_the_injection(self, tmp_path):
        backend = _backend(tmp_path, FaultPlan(seed=11))
        assert backend.location().startswith("faulty(")
        assert "seed=11" in backend.location()
