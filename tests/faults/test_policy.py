"""RetryPolicy and CircuitBreaker unit tests (no real sleeping)."""

from __future__ import annotations

import pickle

import pytest

from repro.faults.policy import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.4)
        for attempt in range(4):
            nominal = min(0.4, 0.1 * 2**attempt)
            delay = policy.delay(attempt, token="k")
            assert policy.delay(attempt, token="k") == delay
            assert 0.5 * nominal <= delay <= nominal

    def test_tokens_desynchronise(self):
        policy = RetryPolicy()
        assert policy.delay(0, "alpha") != policy.delay(0, "beta")

    def test_call_retries_then_succeeds(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.5)
        result = policy.call(
            flaky, retry_on=OSError, token="t", sleep=sleeps.append
        )
        assert result == "ok"
        assert len(calls) == 3
        assert sleeps == [policy.delay(0, "t"), policy.delay(1, "t")]

    def test_call_reraises_when_exhausted(self):
        def always_fails():
            raise OSError("down")

        with pytest.raises(OSError, match="down"):
            RetryPolicy(attempts=2, base_delay=0.0).call(
                always_fails, retry_on=OSError, sleep=lambda _s: None
            )

    def test_unlisted_exceptions_pass_straight_through(self):
        def boom():
            raise ValueError("bug")

        calls = []
        with pytest.raises(ValueError):
            RetryPolicy(attempts=3).call(
                boom, retry_on=OSError, sleep=calls.append
            )
        assert calls == []  # no retry, no sleep

    def test_on_retry_hook_fires_per_retry(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise OSError("once")
            return None

        RetryPolicy(attempts=2, base_delay=0.0).call(
            flaky,
            retry_on=OSError,
            sleep=lambda _s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(0, "once")]


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=_Clock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.describe()["short_circuits"] == 1

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=_Clock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown_then_close(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()  # still cooling down
        clock.now = 5.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now = 9.0
        assert not breaker.allow()  # fresh cooldown from the probe failure
        clock.now = 10.0
        assert breaker.allow()
        assert breaker.describe()["opens"] == 2

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_pickles_across_the_pool_boundary(self):
        # TieredBackend (which embeds a breaker) is pickled to workers;
        # the lock must be dropped and recreated, counters preserved.
        breaker = CircuitBreaker(failure_threshold=2, clock=_Clock())
        breaker.record_failure()
        breaker.record_failure()
        clone = pickle.loads(pickle.dumps(breaker))
        assert clone.state == "open"
        assert clone.describe()["opens"] == 1
        clone.record_success()  # the fresh lock works
        assert clone.state == "closed"
