"""FaultPlan: JSON round-trip, validation, seeded-stream determinism."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    FAULT_PLAN_FORMAT,
    CacheFaults,
    FaultPlan,
    FaultPlanError,
    PeerFaults,
    WorkerFaults,
    load_plan,
)


def _full_plan() -> FaultPlan:
    return FaultPlan(
        seed=42,
        cache=CacheFaults(
            latency=0.001, transient_error_p=0.1, drop_put_p=0.2,
            corrupt_get_p=0.3, corrupt_mode="truncate",
        ),
        worker=WorkerFaults(
            crash_at_cell=2, crashes=3, exit_code=9, benchmark="swim",
        ),
        peer=PeerFaults(mode="slow", delay=0.01, recover_after=5),
    )


class TestRoundTrip:
    def test_full_plan_round_trips(self):
        plan = _full_plan()
        assert FaultPlan.from_config(plan.to_config()) == plan

    def test_dump_load_round_trips(self, tmp_path):
        plan = _full_plan()
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert load_plan(path) == plan

    def test_empty_plan_is_valid(self):
        plan = FaultPlan.from_config({"seed": 1})
        assert plan.cache is None and plan.worker is None and plan.peer is None

    def test_format_stamp_optional_but_validated(self):
        assert FaultPlan.from_config({"seed": 3}).seed == 3
        with pytest.raises(FaultPlanError, match="format"):
            FaultPlan.from_config({"format": FAULT_PLAN_FORMAT + 1, "seed": 3})


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultPlanError, match="worker_faults"):
            FaultPlan.from_config({"worker_faults": {}})

    def test_unknown_section_key_names_valid_set(self):
        with pytest.raises(FaultPlanError, match="corrupt_get_p") as err:
            FaultPlan.from_config({"cache": {"corrupt_p": 0.5}})
        assert err.value.section == "cache"

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError, match=r"\[0.0, 1.0\]"):
            FaultPlan.from_config({"cache": {"drop_put_p": 1.5}})

    def test_bad_corrupt_mode(self):
        with pytest.raises(FaultPlanError, match="smash"):
            FaultPlan.from_config({"cache": {"corrupt_mode": "smash"}})

    def test_bad_peer_mode_and_recover_after(self):
        with pytest.raises(FaultPlanError, match="teleport"):
            FaultPlan.from_config({"peer": {"mode": "teleport"}})
        with pytest.raises(FaultPlanError, match="recover_after"):
            FaultPlan.from_config({"peer": {"recover_after": 0}})

    def test_worker_crash_at_cell_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="crash_at_cell"):
            FaultPlan.from_config({"worker": {"crash_at_cell": 0}})

    def test_seed_must_be_int(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_config({"seed": "7"})
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_config({"seed": True})

    def test_section_must_be_object(self):
        with pytest.raises(FaultPlanError, match="cache"):
            FaultPlan.from_config({"cache": 0.5})

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            load_plan(tmp_path / "missing.json")

    def test_non_json_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(FaultPlanError, match="not JSON"):
            load_plan(path)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = FaultPlan(seed=7).stream("cache")
        b = FaultPlan(seed=7).stream("cache")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_streams_are_independent_by_name(self):
        plan = FaultPlan(seed=7)
        assert plan.stream("cache").random() != plan.stream("peer").random()

    def test_different_seed_different_stream(self):
        assert (
            FaultPlan(seed=7).stream("cache").random()
            != FaultPlan(seed=8).stream("cache").random()
        )
