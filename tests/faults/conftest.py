"""Fixtures for the fault-injection (chaos) suite.

``arm_faults`` is the suite's injection switchboard: given a
:class:`~repro.faults.plan.FaultPlan` it writes the plan JSON, creates a
crash-token state directory, exports ``REPRO_FAULTS`` /
``REPRO_FAULTS_STATE`` (monkeypatched, so teardown restores the
environment) and resets the worker-module cache — pool workers spawned
afterwards inherit the armed plan. Tests that only need a cache-fault
injector skip the environment entirely and wrap a backend in
:class:`~repro.faults.backend.FaultyBackend` directly.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan
from repro.faults.workers import ENV_PLAN, ENV_STATE, reset_for_tests
from repro.sim import SimulationConfig
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec


@pytest.fixture
def arm_faults(monkeypatch, tmp_path):
    """Factory: arm crash injection for a plan; returns the state dir."""

    def arm(plan: FaultPlan):
        plan_path = tmp_path / "fault-plan.json"
        plan.dump(plan_path)
        state_dir = tmp_path / "fault-state"
        state_dir.mkdir(exist_ok=True)
        monkeypatch.setenv(ENV_PLAN, str(plan_path))
        monkeypatch.setenv(ENV_STATE, str(state_dir))
        reset_for_tests()
        return state_dir

    yield arm
    reset_for_tests()  # drop the cached plan after the env is restored


@pytest.fixture
def small_cells():
    """A 2×2 grid of fast cells (distinct labels and benchmarks)."""
    config = SimulationConfig(n_branches=400, warmup=80)
    return [
        SweepCell(label, bench, spec, ProgramSpec(benchmark=bench), config)
        for bench in ("swim", "gcc")
        for label, spec in (
            ("gshare-2", SystemSpec.single("gshare", 2)),
            ("gskew-4", SystemSpec.single("2bc-gskew", 4)),
        )
    ]
