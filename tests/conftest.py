"""Test-suite configuration: make `tests/` itself importable.

Shared test-support modules (notably :mod:`reference_kernel`, the frozen
pre-optimization simulation kernel used by the differential tests and by
``tools/profile_kernel.py --compare-reference``) live directly under
``tests/``; nested test packages need that directory on ``sys.path``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
