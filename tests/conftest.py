"""Test-suite configuration: make `tests/` itself importable.

Shared test-support modules (notably :mod:`reference_kernel`, the frozen
pre-optimization simulation kernel used by the differential tests and by
``tools/profile_kernel.py --compare-reference``) live directly under
``tests/``; nested test packages need that directory on ``sys.path``.

Backend matrix: the differential kernel tests parametrize over the
simulation backends via the ``kernel_backend`` fixture, which by default
runs every case under both ``"scalar"`` and ``"batched"``. Pass
``--backend scalar`` (or ``batched``) to restrict the matrix to one
backend — useful for bisecting a divergence, or for CI shards.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

_BACKENDS = ("scalar", "batched")


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        choices=_BACKENDS,
        help="restrict backend-parametrized kernel tests to one backend",
    )


@pytest.fixture(params=_BACKENDS)
def kernel_backend(request):
    """Simulation backend to run a differential case under.

    Parametrized over every backend so the tier-1 differential matrix
    proves each one against the frozen reference; ``--backend`` narrows
    the parametrization to a single backend.
    """
    chosen = request.config.getoption("--backend")
    if chosen is not None and request.param != chosen:
        pytest.skip(f"--backend={chosen} excludes {request.param}")
    return request.param
