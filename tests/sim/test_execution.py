"""Differential tests for the parallel sweep execution engine.

The engine's contract is that the executor and the cache are invisible:
serial in-process execution, process-pool execution, and a cold-then-warm
cache round trip must produce field-by-field identical
``SweepResult``s. These tests enforce that contract on a small
(3 systems × 3 benchmarks) grid, and pin down the supporting pieces —
spec content hashing, cache robustness, duplicate-cell coalescing and
the picklability of cells.
"""

import dataclasses
import json

import pytest

from repro.pipeline.machine import PipelineResult
from repro.sim import (
    ProcessPoolExecutor,
    ProgramSpec,
    ResultCache,
    RunStats,
    SerialExecutor,
    SimulationConfig,
    SweepCell,
    SweepEngine,
    SystemSpec,
    make_engine,
    run_cell,
    run_sweep,
)
from repro.sim.cache import stats_from_dict, stats_to_dict
from repro.sim.specs import MODE_TIMING

#: 3 systems × 3 benchmarks — the differential grid from the issue.
SYSTEMS = {
    "gshare-alone": SystemSpec.single("gshare", 2),
    "filtered-hybrid": SystemSpec.hybrid("gshare", 2, "tagged-gshare", 2, 4),
    "unfiltered-hybrid": SystemSpec.hybrid("2bc-gskew", 2, "gshare", 2, 1),
}
BENCHMARKS = ("swim", "facerec", "ammp")
CONFIG = SimulationConfig(n_branches=1500, warmup=300)

_STATS_COUNTERS = (
    "benchmark",
    "system",
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)


def make_cells():
    return [
        SweepCell(
            system_label=label,
            bench_name=name,
            system=spec,
            program=ProgramSpec(benchmark=name),
            config=CONFIG,
        )
        for name in BENCHMARKS
        for label, spec in SYSTEMS.items()
    ]


def assert_stats_identical(a: RunStats, b: RunStats) -> None:
    """Field-by-field equality, including derived metrics and the census."""
    for field in _STATS_COUNTERS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.census.counts == b.census.counts
    assert a.per_site == b.per_site
    assert a.misp_per_kuops == b.misp_per_kuops


def assert_sweeps_identical(a, b) -> None:
    assert set(a.runs) == set(b.runs)
    for key in a.runs:
        assert_stats_identical(a.runs[key], b.runs[key])


class TestDifferential:
    def test_serial_pool_and_cache_paths_are_identical(self, tmp_path):
        """The headline differential: serial == process pool == cold == warm."""
        serial = SweepEngine(executor=SerialExecutor()).run(make_cells())
        pooled = SweepEngine(executor=ProcessPoolExecutor(jobs=2)).run(make_cells())

        cache = ResultCache(tmp_path / "cache")
        cold_engine = SweepEngine(executor=SerialExecutor(), cache=cache)
        cold = cold_engine.run(make_cells())
        assert cache.hits == 0

        warm_cache = ResultCache(tmp_path / "cache")
        warm_engine = SweepEngine(executor=SerialExecutor(), cache=warm_cache)
        warm = warm_engine.run(make_cells())
        assert warm_cache.misses == 0
        # Every distinct cell came from disk, none were simulated.
        assert warm_cache.hits == len({c.content_hash() for c in make_cells()})

        assert_sweeps_identical(serial, pooled)
        assert_sweeps_identical(serial, cold)
        assert_sweeps_identical(serial, warm)

    def test_grid_covers_expected_shape(self):
        sweep = SweepEngine().run(make_cells())
        assert set(sweep.system_labels()) == set(SYSTEMS)
        assert set(sweep.bench_names()) == set(BENCHMARKS)
        assert len(sweep.runs) == 9
        for (_, bench), stats in sweep.runs.items():
            assert stats.branches == CONFIG.n_branches - CONFIG.warmup
            assert stats.benchmark == bench

    def test_run_sweep_spec_path_matches_engine(self):
        via_run_sweep = run_sweep(
            SYSTEMS, {name: name for name in BENCHMARKS}, CONFIG
        )
        via_engine = SweepEngine().run(make_cells())
        assert_sweeps_identical(via_run_sweep, via_engine)


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        [a], [b] = make_cells()[:1], make_cells()[:1]
        assert a is not b
        assert a.content_hash() == b.content_hash()

    def test_hash_ignores_labels(self):
        a = make_cells()[0]
        b = make_cells()[0]
        b.system_label = "renamed"
        b.bench_name = "swim"  # display key, same underlying program spec
        assert a.content_hash() == b.content_hash()

    def test_hash_varies_with_content(self):
        base = make_cells()[0]
        variants = [
            SweepCell(
                "x", "swim", SystemSpec.single("gshare", 4),
                ProgramSpec(benchmark="swim"), CONFIG,
            ),
            SweepCell(
                "x", "swim", base.system,
                ProgramSpec(benchmark="ammp"), CONFIG,
            ),
            SweepCell(
                "x", "swim", base.system,
                ProgramSpec(benchmark="swim"),
                SimulationConfig(n_branches=1501, warmup=300),
            ),
            SweepCell(
                "x", "swim", base.system,
                ProgramSpec(benchmark="swim", seed=7), CONFIG,
            ),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == 5

    def test_cell_seed_is_deterministic(self):
        a, b = make_cells()[0], make_cells()[0]
        assert a.cell_seed() == b.cell_seed()
        assert 0 <= a.cell_seed() < 2**63


class TestSpecs:
    def test_system_spec_builds_fresh_systems(self):
        spec = SYSTEMS["filtered-hybrid"]
        a, b = spec.build(), spec.build()
        assert a is not b
        assert a.future_bits == 4

    def test_single_spec_rejects_critic(self):
        with pytest.raises(ValueError):
            SystemSpec(kind="single", prophet=("gshare", 2), critic=("gshare", 2))

    def test_hybrid_spec_requires_critic(self):
        with pytest.raises(ValueError):
            SystemSpec(kind="hybrid", prophet=("gshare", 2))

    def test_program_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            ProgramSpec()
        with pytest.raises(ValueError):
            from repro.workloads.generator import WorkloadProfile

            ProgramSpec(benchmark="swim", profile=WorkloadProfile())

    def test_program_spec_seed_override_changes_program(self):
        base = ProgramSpec(benchmark="swim").build()
        reseeded = ProgramSpec(benchmark="swim", seed=99).build()
        assert base.name == reseeded.name
        assert len(base.blocks) != len(reseeded.blocks) or any(
            a.pc != b.pc for a, b in zip(base.blocks, reseeded.blocks)
        )

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            ProgramSpec(benchmark="doom").build()


class TestCache:
    def test_stats_round_trip_is_lossless(self):
        stats = run_cell(make_cells()[0])
        stats.record_site(0x400100, prophet_misp=True, final_misp=False)
        rebuilt = stats_from_dict(json.loads(json.dumps(stats_to_dict(stats))))
        assert_stats_identical(stats, rebuilt)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()
        cache.put(key, run_cell(cell))
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_wrong_typed_fields_are_a_miss(self, tmp_path):
        """Valid JSON with a null counter must degrade to a miss, not crash."""
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()
        cache.put(key, run_cell(cell))
        path = cache.path_for(key)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["payload"]["branches"] = None
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()
        cache.put(key, run_cell(cell))
        other = "0" * 64
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other).write_text(
            cache.path_for(key).read_text(encoding="utf-8"), encoding="utf-8"
        )
        assert cache.get(other) is None

    def test_timing_cells_cache_round_trip(self, tmp_path):
        cell = make_cells()[0]
        cell.mode = MODE_TIMING
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        [cold] = engine.run_cells([cell])
        [warm] = engine.run_cells([cell])
        assert isinstance(cold, PipelineResult)
        assert dataclasses.asdict(cold) == dataclasses.asdict(warm)
        assert cache.hits == 1

    def test_engine_coalesces_duplicate_cells(self):
        cell_a = make_cells()[0]
        cell_b = make_cells()[0]
        cell_b.system_label = "twin"

        calls = []

        class CountingExecutor(SerialExecutor):
            def map_cells(self, cells):
                calls.extend(cells)
                return super().map_cells(cells)

        engine = SweepEngine(executor=CountingExecutor())
        first, twin = engine.run_cells([cell_a, cell_b])
        assert len(calls) == 1
        assert twin.system == "twin"
        assert first is not twin
        assert_stats_identical(
            first, RunStats(**{**vars(twin), "system": first.system})
        )


class TestMakeEngine:
    def test_jobs_selects_executor(self):
        assert isinstance(make_engine(jobs=1).executor, SerialExecutor)
        assert isinstance(make_engine(jobs=3).executor, ProcessPoolExecutor)
        assert make_engine(jobs=3).executor.jobs == 3

    def test_cache_dir_enables_cache(self, tmp_path):
        assert make_engine().cache is None
        engine = make_engine(cache_dir=tmp_path / "c")
        assert engine.cache is not None
        assert (tmp_path / "c").is_dir()

    def test_pool_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(jobs=0)
