"""Differential tests for the sweep-scale parallel execution engine.

The engine's contract is that the executor, the build memoization and
the cache are invisible: serial in-process execution, persistent
process-pool execution, and a cold-then-warm cache round trip must all
produce results field-by-field identical to the from-scratch reference
work unit (:func:`run_cell`). These tests enforce that contract on a
small (3 systems × 3 benchmarks) grid and on a mixed
accuracy/timing/trace/duplicate grid, and pin down the supporting
pieces — spec content hashing, cache robustness, program-build
memoization, streaming write-back, error surfacing and duplicate-cell
coalescing.
"""

import dataclasses
import json

import pytest

from repro.pipeline.machine import PipelineResult
from repro.sim import (
    ProcessPoolExecutor,
    ProgramSpec,
    ResultCache,
    RunStats,
    SerialExecutor,
    SimulationConfig,
    SweepCell,
    SweepEngine,
    SystemSpec,
    make_engine,
    run_cell,
    run_sweep,
)
from repro.sim.cache import stats_from_dict, stats_to_dict
from repro.sim.execution import (
    CellExecutionError,
    ProgramBuildCache,
    WorkerPoolError,
)
from repro.sim.specs import MODE_TIMING

#: 3 systems × 3 benchmarks — the differential grid from the issue.
SYSTEMS = {
    "gshare-alone": SystemSpec.single("gshare", 2),
    "filtered-hybrid": SystemSpec.hybrid("gshare", 2, "tagged-gshare", 2, 4),
    "unfiltered-hybrid": SystemSpec.hybrid("2bc-gskew", 2, "gshare", 2, 1),
}
BENCHMARKS = ("swim", "facerec", "ammp")
CONFIG = SimulationConfig(n_branches=1500, warmup=300)

_STATS_COUNTERS = (
    "benchmark",
    "system",
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)


def make_cells():
    return [
        SweepCell(
            system_label=label,
            bench_name=name,
            system=spec,
            program=ProgramSpec(benchmark=name),
            config=CONFIG,
        )
        for name in BENCHMARKS
        for label, spec in SYSTEMS.items()
    ]


def assert_stats_identical(a: RunStats, b: RunStats) -> None:
    """Field-by-field equality, including derived metrics and the census."""
    for field in _STATS_COUNTERS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.census.counts == b.census.counts
    assert a.per_site == b.per_site
    assert a.misp_per_kuops == b.misp_per_kuops


def assert_sweeps_identical(a, b) -> None:
    assert set(a.runs) == set(b.runs)
    for key in a.runs:
        assert_stats_identical(a.runs[key], b.runs[key])


class TestDifferential:
    def test_serial_pool_and_cache_paths_are_identical(self, tmp_path):
        """The headline differential: serial == process pool == cold == warm."""
        serial = SweepEngine(executor=SerialExecutor()).run(make_cells())
        pooled = SweepEngine(executor=ProcessPoolExecutor(jobs=2)).run(make_cells())

        cache = ResultCache(tmp_path / "cache")
        cold_engine = SweepEngine(executor=SerialExecutor(), cache=cache)
        cold = cold_engine.run(make_cells())
        assert cache.hits == 0

        warm_cache = ResultCache(tmp_path / "cache")
        warm_engine = SweepEngine(executor=SerialExecutor(), cache=warm_cache)
        warm = warm_engine.run(make_cells())
        assert warm_cache.misses == 0
        # Every distinct cell came from disk, none were simulated.
        assert warm_cache.hits == len({c.content_hash() for c in make_cells()})

        assert_sweeps_identical(serial, pooled)
        assert_sweeps_identical(serial, cold)
        assert_sweeps_identical(serial, warm)

    def test_grid_covers_expected_shape(self):
        sweep = SweepEngine().run(make_cells())
        assert set(sweep.system_labels()) == set(SYSTEMS)
        assert set(sweep.bench_names()) == set(BENCHMARKS)
        assert len(sweep.runs) == 9
        for (_, bench), stats in sweep.runs.items():
            assert stats.branches == CONFIG.n_branches - CONFIG.warmup
            assert stats.benchmark == bench

    def test_run_sweep_spec_path_matches_engine(self):
        via_run_sweep = run_sweep(
            SYSTEMS, {name: name for name in BENCHMARKS}, CONFIG
        )
        via_engine = SweepEngine().run(make_cells())
        assert_sweeps_identical(via_run_sweep, via_engine)


def make_mixed_cells(trace_path):
    """Accuracy + timing + trace-backed + duplicate cells in one grid."""
    cells = make_cells()
    cells.append(
        SweepCell(
            "timed", "swim", SystemSpec.single("gshare", 2),
            ProgramSpec(benchmark="swim"), CONFIG, mode=MODE_TIMING,
        )
    )
    cells.append(
        SweepCell(
            "replayed", "swim-trace",
            SystemSpec.hybrid("gshare", 2, "tagged-gshare", 2, 4),
            ProgramSpec(trace=trace_path),
            SimulationConfig(n_branches=1200, warmup=240),
        )
    )
    twin = SweepCell(
        "twin-label", "swim", SYSTEMS["gshare-alone"],
        ProgramSpec(benchmark="swim"), CONFIG,
    )
    cells.append(twin)  # duplicate of the first cell, different label
    return cells


def assert_results_identical(got, want) -> None:
    """Field-by-field equality across mixed accuracy/timing results."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert type(a) is type(b)
        if isinstance(a, RunStats):
            assert_stats_identical(a, b)
        else:
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


@pytest.fixture(scope="module")
def swim_trace(tmp_path_factory):
    from repro.workloads import benchmark
    from repro.workloads.trace import record_trace

    path = tmp_path_factory.mktemp("traces") / "swim.trace"
    record_trace(benchmark("swim"), 1500, path, source={})
    return str(path)


class TestMixedDifferential:
    """Every engine path == run_cell on a mixed grid (the PR-5 invariant)."""

    def test_all_paths_identical_on_mixed_grid(self, swim_trace, tmp_path):
        reference = [run_cell(cell) for cell in make_mixed_cells(swim_trace)]

        serial = SweepEngine().run_cells(make_mixed_cells(swim_trace))
        assert_results_identical(serial, reference)

        with make_engine(jobs=2) as pooled_engine:
            pooled = pooled_engine.run_cells(make_mixed_cells(swim_trace))
            assert_results_identical(pooled, reference)
            # The pool (and its worker build caches) persists; a repeat
            # run reuses memoized builds and must stay identical.
            again = pooled_engine.run_cells(make_mixed_cells(swim_trace))
            assert_results_identical(again, reference)

        with make_engine(jobs=2, cache_dir=tmp_path / "cache") as cold_engine:
            cold = cold_engine.run_cells(make_mixed_cells(swim_trace))
            assert_results_identical(cold, reference)

        with make_engine(jobs=2, cache_dir=tmp_path / "cache") as warm_engine:
            warm = warm_engine.run_cells(make_mixed_cells(swim_trace))
            assert_results_identical(warm, reference)
            assert warm_engine.cache.misses == 0

    def test_serial_executor_memoizes_builds_without_changing_results(self):
        executor = SerialExecutor()
        cells = make_cells()
        first = executor.map_cells(cells)
        # Every benchmark was built once and then reused per system.
        assert executor.builds.builds == len(BENCHMARKS)
        assert executor.builds.reuses == len(cells) - len(BENCHMARKS)
        second = executor.map_cells(make_cells())
        assert executor.builds.builds == len(BENCHMARKS)  # still warm
        assert_results_identical(first, [run_cell(c) for c in make_cells()])
        assert_results_identical(second, first)


class TestPersistentPool:
    def test_pool_survives_across_map_cells_calls(self):
        executor = ProcessPoolExecutor(jobs=2)
        try:
            cells = make_cells()[:3]
            executor.map_cells(cells)
            pool = executor._pool
            assert pool is not None
            executor.map_cells(make_cells()[:3])
            assert executor._pool is pool  # same workers, not a respawn
        finally:
            executor.shutdown()
        assert executor._pool is None

    def test_single_job_pool_runs_in_process(self):
        executor = ProcessPoolExecutor(jobs=1)
        results = executor.map_cells(make_cells()[:2])
        assert executor._pool is None  # never spawned
        assert_results_identical(results, [run_cell(c) for c in make_cells()[:2]])

    def test_streaming_on_result_delivers_every_cell_once(self):
        seen = {}
        executor = ProcessPoolExecutor(jobs=2)
        try:
            cells = make_cells()
            results = executor.map_cells(
                cells, on_result=lambda i, r: seen.setdefault(i, r)
            )
        finally:
            executor.shutdown()
        assert sorted(seen) == list(range(len(cells)))
        for index, result in seen.items():
            assert result is results[index]


class TestProgramBuildCache:
    def test_reuses_equal_build_keys(self):
        cache = ProgramBuildCache(capacity=4)
        a = cache.program_for(ProgramSpec(benchmark="swim"))
        b = cache.program_for(ProgramSpec(benchmark="swim"))
        assert a is b
        assert (cache.builds, cache.reuses) == (1, 1)

    def test_distinct_seeds_build_distinct_programs(self):
        cache = ProgramBuildCache(capacity=4)
        a = cache.program_for(ProgramSpec(benchmark="swim"))
        b = cache.program_for(ProgramSpec(benchmark="swim", seed=7))
        assert a is not b
        assert cache.builds == 2

    def test_capacity_zero_disables_memoization(self):
        cache = ProgramBuildCache(capacity=0)
        a = cache.program_for(ProgramSpec(benchmark="swim"))
        b = cache.program_for(ProgramSpec(benchmark="swim"))
        assert a is not b
        assert cache.builds == 2 and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ProgramBuildCache(capacity=-1)

    def test_capacity_evicts_least_recently_used(self):
        cache = ProgramBuildCache(capacity=2)
        first = cache.program_for(ProgramSpec(benchmark="swim"))
        cache.program_for(ProgramSpec(benchmark="facerec"))
        cache.program_for(ProgramSpec(benchmark="ammp"))  # evicts swim
        assert len(cache) == 2
        again = cache.program_for(ProgramSpec(benchmark="swim"))
        assert again is not first
        assert cache.builds == 4

    def test_reused_program_resets_to_fresh_behaviour(self):
        """Simulating twice off one cached build == two fresh builds."""
        from repro.sim import simulate

        cache = ProgramBuildCache(capacity=2)
        spec = ProgramSpec(benchmark="swim")
        system_spec = SYSTEMS["filtered-hybrid"]
        first = simulate(cache.program_for(spec), system_spec.build(), CONFIG)
        second = simulate(cache.program_for(spec), system_spec.build(), CONFIG)
        fresh = simulate(spec.build(), system_spec.build(), CONFIG)
        for field in ("mispredicts", "committed_uops", "fetched_uops", "taken_branches"):
            assert getattr(first, field) == getattr(second, field) == getattr(fresh, field)


class TestErrorSurfacing:
    BROKEN = SweepCell(
        "broken-label", "doom", SystemSpec.single("gshare", 2),
        ProgramSpec(benchmark="doom"), CONFIG,
    )

    def test_unknown_benchmark_names_the_cell(self):
        with pytest.raises(CellExecutionError) as excinfo:
            SweepEngine().run_cells([self.BROKEN] + make_cells())
        message = str(excinfo.value)
        assert "broken-label" in message and "doom" in message
        assert "KeyError" in message  # the original cause, not swallowed
        assert excinfo.value.spec_config["program"] == {"benchmark": "doom"}

    def test_worker_failure_names_the_cell_and_cancels(self, swim_trace, tmp_path):
        # A trace with a valid header but truncated body hashes fine in
        # the parent and fails inside the worker mid-build.
        import shutil

        broken_trace = tmp_path / "truncated.trace"
        shutil.copyfile(swim_trace, broken_trace)
        payload = broken_trace.read_bytes()
        broken_trace.write_bytes(payload[: len(payload) - len(payload) // 3])
        cells = make_cells()
        cells.insert(
            0,
            SweepCell(
                "truncated-label", "swim-trace", SystemSpec.single("gshare", 2),
                ProgramSpec(trace=str(broken_trace)),
                SimulationConfig(n_branches=1200, warmup=240),
            ),
        )
        with make_engine(jobs=2) as engine:
            with pytest.raises(CellExecutionError) as excinfo:
                engine.run_cells(cells)
            message = str(excinfo.value)
            assert "truncated-label" in message and "swim-trace" in message
            assert excinfo.value.worker_traceback is not None
            # The pool survives a failed sweep and keeps producing
            # correct results.
            results = engine.run_cells(make_cells())
            assert_results_identical(results, [run_cell(c) for c in make_cells()])

    def test_error_pickles_losslessly(self):
        import pickle

        error = CellExecutionError(
            "label", "bench", {"k": 1}, "ValueError: boom", "tb",
            cause_types=("ValueError", "Exception", "BaseException", "object"),
        )
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.spec_config == {"k": 1}
        assert clone.cause_types == error.cause_types

    def test_caused_by_matches_base_classes_across_pickle(self):
        """An OSError subclass in a worker still matches 'OSError'."""
        import pickle

        from repro.sim.execution import _wrap_cell_error

        cell = make_cells()[0]
        try:
            raise FileNotFoundError("gone.trace")
        except FileNotFoundError as exc:
            error = _wrap_cell_error(cell, exc)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.caused_by("OSError")
        assert clone.caused_by("TraceFormatError", "OSError")
        assert not clone.caused_by("TraceFormatError")

    def test_cache_write_failure_names_the_cell(self, tmp_path):
        """A full/read-only cache dir fails the sweep with the cell named."""
        cache = ResultCache(tmp_path / "cache")

        class ExplodingCache:
            root = cache.root

            def get(self, key):
                return None

            def put(self, key, result):
                raise OSError(28, "No space left on device")

        engine = SweepEngine(cache=ExplodingCache())
        with pytest.raises(CellExecutionError) as excinfo:
            engine.run_cells(make_cells()[:2])
        assert excinfo.value.caused_by("OSError")
        assert "gshare-alone" in str(excinfo.value)


class _WorkerKillerSpec(ProgramSpec):
    """A spec that hashes normally but kills the worker that builds it."""

    def build(self):
        import os

        os._exit(1)  # simulates an OOM kill / segfault, not an exception


class TestWorkerDeath:
    def test_dead_worker_surfaces_as_pool_error_and_pool_respawns(self):
        killer = SweepCell(
            "killer", "swim", SystemSpec.single("gshare", 2),
            _WorkerKillerSpec(benchmark="swim"), CONFIG,
        )
        executor = ProcessPoolExecutor(jobs=2)
        try:
            with pytest.raises(WorkerPoolError):
                executor.map_cells([killer] + make_cells()[:2])
            assert executor._pool is None  # broken pool was discarded
            # The next grid respawns a healthy pool and runs normally.
            results = executor.map_cells(make_cells()[:3])
            assert_results_identical(results, [run_cell(c) for c in make_cells()[:3]])
        finally:
            executor.shutdown()


class TestBuildCacheEnvKnob:
    def test_malformed_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_CACHE", "off")
        with pytest.raises(ValueError, match="REPRO_BUILD_CACHE"):
            ProgramBuildCache()

    def test_env_zero_disables_memoization(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_CACHE", "0")
        assert ProgramBuildCache().capacity == 0


class TestTraceHandleRelease:
    def test_finished_trace_cell_holds_no_open_reader(self, swim_trace):
        """A completed sweep leaves no open handle on its trace files."""
        executor = SerialExecutor()
        cell = SweepCell(
            "replayed", "swim-trace", SystemSpec.single("gshare", 2),
            ProgramSpec(trace=swim_trace),
            SimulationConfig(n_branches=1200, warmup=240),
        )
        executor.map_cells([cell])
        [program] = executor.builds._programs.values()
        cursors = {
            block.behavior.cursor
            for block in program.blocks
            if block.behavior is not None
        }
        assert cursors and all(c._reader is None for c in cursors)


class TestStreamingWriteBack:
    class _FailAfter(SerialExecutor):
        """Reference-style executor that dies after N computed cells."""

        def __init__(self, fail_after: int) -> None:
            super().__init__()
            self.fail_after = fail_after
            self.computed = 0

        def map_cells(self, cells, on_result=None, cache=None, keys=None):
            results = []
            for index, cell in enumerate(cells):
                if self.computed >= self.fail_after:
                    raise RuntimeError("killed mid-sweep")
                result = run_cell(cell)
                self.computed += 1
                if cache is not None:
                    cache.put(keys[index] if keys else cell.content_hash(), result)
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results

    def test_killed_sweep_resumes_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(executor=self._FailAfter(fail_after=4), cache=cache)
        with pytest.raises(RuntimeError):
            engine.run_cells(make_cells())
        # The four finished cells hit the disk before the "kill".
        assert len(cache) == 4
        resumed = SweepEngine(executor=SerialExecutor(), cache=cache)
        results = resumed.run_cells(make_cells())
        assert resumed.cache.hits == 4
        assert_results_identical(results, [run_cell(c) for c in make_cells()])

    def test_pool_workers_write_back_incrementally(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with SweepEngine(executor=ProcessPoolExecutor(jobs=2), cache=cache) as engine:
            engine.run_cells(make_cells())
        # Workers put their own results; the parent never re-wrote them.
        assert len(cache) == len({c.content_hash() for c in make_cells()})
        warm = SweepEngine(cache=ResultCache(tmp_path / "cache"))
        warm.run_cells(make_cells())
        assert warm.cache.misses == 0


class TestProgress:
    def test_progress_counts_cached_fresh_and_duplicate_cells(self, tmp_path):
        events = []

        def progress(done, total, cell):
            events.append((done, total, cell.system_label))

        cells = make_cells()
        twin = SweepCell(
            "twin", "swim", SYSTEMS["gshare-alone"],
            ProgramSpec(benchmark="swim"), CONFIG,
        )
        cells.append(twin)
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(cache=cache).run_cells(cells[:3])  # pre-fill 3 cells
        engine = SweepEngine(cache=ResultCache(tmp_path / "cache"), progress=progress)
        engine.run_cells(cells)
        assert [done for done, _, _ in events] == list(range(1, len(cells) + 1))
        assert all(total == len(cells) for _, total, _ in events)
        assert events[-1][2] == "twin"  # duplicates complete last


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        [a], [b] = make_cells()[:1], make_cells()[:1]
        assert a is not b
        assert a.content_hash() == b.content_hash()

    def test_hash_ignores_labels(self):
        a = make_cells()[0]
        b = make_cells()[0]
        b.system_label = "renamed"
        b.bench_name = "swim"  # display key, same underlying program spec
        assert a.content_hash() == b.content_hash()

    def test_hash_varies_with_content(self):
        base = make_cells()[0]
        variants = [
            SweepCell(
                "x", "swim", SystemSpec.single("gshare", 4),
                ProgramSpec(benchmark="swim"), CONFIG,
            ),
            SweepCell(
                "x", "swim", base.system,
                ProgramSpec(benchmark="ammp"), CONFIG,
            ),
            SweepCell(
                "x", "swim", base.system,
                ProgramSpec(benchmark="swim"),
                SimulationConfig(n_branches=1501, warmup=300),
            ),
            SweepCell(
                "x", "swim", base.system,
                ProgramSpec(benchmark="swim", seed=7), CONFIG,
            ),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == 5

    def test_cell_seed_is_deterministic(self):
        a, b = make_cells()[0], make_cells()[0]
        assert a.cell_seed() == b.cell_seed()
        assert 0 <= a.cell_seed() < 2**63


class TestSpecs:
    def test_system_spec_builds_fresh_systems(self):
        spec = SYSTEMS["filtered-hybrid"]
        a, b = spec.build(), spec.build()
        assert a is not b
        assert a.future_bits == 4

    def test_single_spec_rejects_critic(self):
        with pytest.raises(ValueError):
            SystemSpec(kind="single", prophet=("gshare", 2), critic=("gshare", 2))

    def test_hybrid_spec_requires_critic(self):
        with pytest.raises(ValueError):
            SystemSpec(kind="hybrid", prophet=("gshare", 2))

    def test_program_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            ProgramSpec()
        with pytest.raises(ValueError):
            from repro.workloads.generator import WorkloadProfile

            ProgramSpec(benchmark="swim", profile=WorkloadProfile())

    def test_program_spec_seed_override_changes_program(self):
        base = ProgramSpec(benchmark="swim").build()
        reseeded = ProgramSpec(benchmark="swim", seed=99).build()
        assert base.name == reseeded.name
        assert len(base.blocks) != len(reseeded.blocks) or any(
            a.pc != b.pc for a, b in zip(base.blocks, reseeded.blocks)
        )

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            ProgramSpec(benchmark="doom").build()


class TestCache:
    def test_stats_round_trip_is_lossless(self):
        stats = run_cell(make_cells()[0])
        stats.record_site(0x400100, prophet_misp=True, final_misp=False)
        rebuilt = stats_from_dict(json.loads(json.dumps(stats_to_dict(stats))))
        assert_stats_identical(stats, rebuilt)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()
        cache.put(key, run_cell(cell))
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_wrong_typed_fields_are_a_miss(self, tmp_path):
        """Valid JSON with a null counter must degrade to a miss, not crash."""
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()
        cache.put(key, run_cell(cell))
        path = cache.path_for(key)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["payload"]["branches"] = None
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()
        cache.put(key, run_cell(cell))
        other = "0" * 64
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other).write_text(
            cache.path_for(key).read_text(encoding="utf-8"), encoding="utf-8"
        )
        assert cache.get(other) is None

    def test_timing_cells_cache_round_trip(self, tmp_path):
        cell = make_cells()[0]
        cell.mode = MODE_TIMING
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        [cold] = engine.run_cells([cell])
        [warm] = engine.run_cells([cell])
        assert isinstance(cold, PipelineResult)
        assert dataclasses.asdict(cold) == dataclasses.asdict(warm)
        assert cache.hits == 1

    def test_engine_coalesces_duplicate_cells(self):
        cell_a = make_cells()[0]
        cell_b = make_cells()[0]
        cell_b.system_label = "twin"

        calls = []

        class CountingExecutor(SerialExecutor):
            def map_cells(self, cells, **kwargs):
                calls.extend(cells)
                return super().map_cells(cells, **kwargs)

        engine = SweepEngine(executor=CountingExecutor())
        first, twin = engine.run_cells([cell_a, cell_b])
        assert len(calls) == 1
        assert twin.system == "twin"
        assert first is not twin
        assert_stats_identical(
            first, RunStats(**{**vars(twin), "system": first.system})
        )


class TestMakeEngine:
    def test_jobs_selects_executor(self):
        assert isinstance(make_engine(jobs=1).executor, SerialExecutor)
        assert isinstance(make_engine(jobs=3).executor, ProcessPoolExecutor)
        assert make_engine(jobs=3).executor.jobs == 3

    def test_cache_dir_enables_cache(self, tmp_path):
        assert make_engine().cache is None
        engine = make_engine(cache_dir=tmp_path / "c")
        assert engine.cache is not None
        assert (tmp_path / "c").is_dir()

    def test_pool_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(jobs=0)
