"""Differential proof that the optimized kernel matches the frozen reference.

The hot-path overhaul (precompiled CFG traversal, pooled in-flight
handles, predictor fast paths) is only admissible because it is
**bit-for-bit identical** to the straightforward kernel it replaced.
These tests run the same (program, system, config) cell through both
:func:`repro.sim.driver.simulate` and
:func:`reference_kernel.reference_simulate` and require every measured
field of ``RunStats`` — census and per-site attribution included — to be
exactly equal across a randomized matrix of seeds × suite archetypes ×
{baseline, hybrid} × BTB on/off.

Any intentional semantic change to the simulation must be applied to
``tests/reference_kernel.py`` as well, with the reasoning documented
there; these tests then pin the new semantics.

Every case runs under each simulation backend (the ``kernel_backend``
fixture: scalar and batched), so the batched structure-of-arrays kernel
is held to the same bit-for-bit standard against the same frozen
reference. Backends the batched kernel does not support fall back to
scalar inside ``simulate`` — running them under ``backend="batched"``
still proves the fallback path. Use ``--backend`` to restrict.
"""

from __future__ import annotations

import zlib
from dataclasses import replace

import pytest

from reference_kernel import reference_simulate
from repro.sim.driver import SimulationConfig, simulate
from repro.sim.metrics import RunStats
from repro.sim.specs import SystemSpec
from repro.workloads.suites import BENCHMARKS
from repro.workloads.generator import generate_program

#: Scalar RunStats fields that must match exactly.
_FIELDS = (
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)

#: One representative per suite archetype, shrunk for test runtime but
#: keeping each archetype's behaviour mix (loopy FP, random-heavy server,
#: call/correlation-rich integer, short-path multimedia).
_ARCHETYPES = {
    "INT00": "gcc",
    "FP00": "swim",
    "MM": "flash",
    "SERV": "tpcc",
}

_SYSTEMS = {
    "baseline": SystemSpec.single("2bc-gskew", 2),
    "hybrid": SystemSpec.hybrid("2bc-gskew", 2, "tagged-gshare", 2, future_bits=4),
}

_CONFIG = SimulationConfig(
    n_branches=1500, warmup=300, inflight_depth=12, collect_per_site=True
)


def _program(suite: str, seed: int):
    profile = replace(
        BENCHMARKS[_ARCHETYPES[suite]],
        name=f"diff-{suite}-{seed}",
        seed=seed,
        static_branch_target=150,
        n_functions=5,
    )
    return generate_program(profile)


def _simulate(program, system, config, backend):
    return simulate(program, system, replace(config, backend=backend))


def assert_bit_identical(new: RunStats, ref: RunStats) -> None:
    for field in _FIELDS:
        assert getattr(new, field) == getattr(ref, field), field
    assert new.census.counts == ref.census.counts
    assert new.per_site == ref.per_site


class TestDifferentialMatrix:
    """Randomized seeds × suites × systems × BTB — the acceptance matrix."""

    @pytest.mark.parametrize("suite", sorted(_ARCHETYPES))
    @pytest.mark.parametrize("system_kind", sorted(_SYSTEMS))
    @pytest.mark.parametrize("use_btb", [True, False])
    def test_kernel_matches_reference(self, suite, system_kind, use_btb, kernel_backend):
        # Deterministic per-cell seed variation (crc32, not hash(): the
        # matrix must exercise the same seeds on every run and machine).
        seed = 1000 + zlib.crc32(f"{suite}/{system_kind}".encode()) % 7
        program = _program(suite, seed)
        config = replace(_CONFIG, use_btb=use_btb, btb_entries=256, btb_ways=4)
        new = _simulate(program, _SYSTEMS[system_kind].build(), config, kernel_backend)
        ref = reference_simulate(program, _SYSTEMS[system_kind].build(), config)
        assert new.mispredicts > 0  # a trivial run would prove nothing
        assert_bit_identical(new, ref)

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_random_seeds_hybrid(self, seed, kernel_backend):
        """Fresh random programs (same archetype, new seeds) stay identical."""
        program = _program("INT00", seed)
        system = SystemSpec.hybrid(
            "2bc-gskew", 2, "tagged-gshare", 2, future_bits=8
        )
        new = _simulate(program, system.build(), _CONFIG, kernel_backend)
        ref = reference_simulate(program, system.build(), _CONFIG)
        assert_bit_identical(new, ref)


class TestDifferentialCriticShapes:
    """Critic variants exercise every prediction-system fast path."""

    def test_filtered_perceptron_critic(self, kernel_backend):
        program = _program("MM", 21)
        spec = SystemSpec.hybrid(
            "2bc-gskew", 2, "filtered-perceptron", 2, future_bits=4
        )
        new = _simulate(program, spec.build(), _CONFIG, kernel_backend)
        ref = reference_simulate(program, spec.build(), _CONFIG)
        assert_bit_identical(new, ref)

    def test_unfiltered_critic_and_insert_on_prophet(self, kernel_backend):
        from repro.core.hybrid import ProphetCriticSystem
        from repro.predictors.budget import make_prophet

        program = _program("SERV", 22)

        def build():
            return ProphetCriticSystem(
                make_prophet("2bc-gskew", 2),
                make_prophet("gshare", 2),  # plain predictor: unfiltered critic
                future_bits=4,
                insert_on="prophet",
            )

        new = _simulate(program, build(), _CONFIG, kernel_backend)
        ref = reference_simulate(program, build(), _CONFIG)
        assert_bit_identical(new, ref)

    def test_zero_future_bits_conventional_hybrid(self, kernel_backend):
        program = _program("FP00", 23)
        spec = SystemSpec.hybrid("gshare", 2, "tagged-gshare", 2, future_bits=0)
        new = _simulate(program, spec.build(), _CONFIG, kernel_backend)
        ref = reference_simulate(program, spec.build(), _CONFIG)
        assert_bit_identical(new, ref)

    def test_single_predictor_prophets(self, kernel_backend):
        """Every prophet family goes through the packed fast path."""
        program = _program("INT00", 31)
        for kind in ("gshare", "perceptron", "tage"):
            spec = SystemSpec.single(kind, 2)
            new = _simulate(program, spec.build(), _CONFIG, kernel_backend)
            ref = reference_simulate(program, spec.build(), _CONFIG)
            assert_bit_identical(new, ref)


class TestFusedMultiSystemReplay:
    """The fused sweep path: K same-program systems replayed down shared
    trace columns (one :class:`FusedReplayContext`) must each stay
    bit-identical to the frozen reference — the same standard as a lone
    run. Covers the hybrid/critic matrix plus singles, mixed geometries
    in one context, and the unsupported-shape fallback."""

    def _runs(self):
        specs = [
            SystemSpec.hybrid("2bc-gskew", 2, "tagged-gshare", 2, future_bits=4),
            SystemSpec.hybrid("2bc-gskew", 2, "filtered-perceptron", 2, future_bits=4),
            SystemSpec.hybrid("2bc-gskew", 2, "tagged-gshare", 2, future_bits=0),
            SystemSpec.hybrid("gshare", 2, "tagged-gshare", 4, future_bits=8),
            SystemSpec.single("2bc-gskew", 2),
            SystemSpec.single("gshare", 4),
        ]
        return [spec.build for spec in specs]

    def test_fused_matrix_matches_reference(self):
        pytest.importorskip("numpy")
        from repro.sim.batched import FusedReplayContext, fused_replay

        program = _program("INT00", 51)
        builders = self._runs()
        shared = FusedReplayContext()
        results = fused_replay(
            program, [(build(), _CONFIG) for build in builders], shared
        )
        assert len(shared) > 0  # per-program precompute actually pooled
        for build, got in zip(builders, results):
            assert got is not None  # every shape above has a batched path
            ref = reference_simulate(_program("INT00", 51), build(), _CONFIG)
            assert_bit_identical(got, ref)

    def test_fused_unsupported_shape_yields_none(self):
        """The fused path declines per entry, never poisoning siblings."""
        pytest.importorskip("numpy")
        from repro.sim.batched import fused_replay

        from repro.core.hybrid import ProphetCriticSystem
        from repro.predictors.budget import make_prophet

        program = _program("MM", 52)
        supported = SystemSpec.single("2bc-gskew", 2)
        unsupported = SystemSpec.single("tage", 2)  # no batched kernel
        # An unfiltered plain-predictor critic has no batched path either.
        unfiltered = ProphetCriticSystem(
            make_prophet("2bc-gskew", 2), make_prophet("gshare", 2), future_bits=4
        )
        results = fused_replay(
            program,
            [
                (supported.build(), _CONFIG),
                (unsupported.build(), _CONFIG),
                (unfiltered, _CONFIG),
                (supported.build(), _CONFIG),
            ],
        )
        assert results[1] is None and results[2] is None
        assert results[0] is not None and results[3] is not None
        assert_bit_identical(results[3], results[0])


class TestDifferentialEdges:
    def test_call_nesting_deeper_than_ras_capacity(self):
        """Static call/return pairing must fall back to live-RAS pops
        when nesting exceeds capacity (drop-oldest would evict the
        paired entry): walker and executor must reproduce the reference
        traversal exactly, underflow fallback included."""
        from reference_kernel import _ReferenceExecutor, _ReferenceWalker
        from repro.engine.executor import ArchitecturalExecutor
        from repro.engine.frontend import SpeculativeWalker
        from repro.workloads.behaviors import PatternBehavior
        from repro.workloads.program import BasicBlock, BlockKind, Program

        def deep_call_program():
            # COND -> CALL f1 -> CALL f2 -> CALL f3 -> RETURN x3 -> back.
            # With a capacity-2 RAS the first return point is dropped, so
            # the third RETURN underflows to the entry.
            return Program(
                name="deep-calls",
                blocks=[
                    BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1,
                               fallthrough=1, behavior=PatternBehavior("TN")),
                    BasicBlock(1, 0x1010, 1, BlockKind.CALL, taken_target=2, fallthrough=10),
                    BasicBlock(2, 0x1020, 1, BlockKind.CALL, taken_target=3, fallthrough=11),
                    BasicBlock(3, 0x1030, 1, BlockKind.CALL, taken_target=4, fallthrough=12),
                    BasicBlock(4, 0x1040, 2, BlockKind.RETURN),
                    BasicBlock(12, 0x1050, 3, BlockKind.RETURN),
                    BasicBlock(11, 0x1060, 5, BlockKind.RETURN),
                    BasicBlock(10, 0x1070, 7, BlockKind.JUMP, taken_target=0),
                ],
                entry=0,
            )

        for capacity in (2, 3, 64):
            program = deep_call_program()
            walker = SpeculativeWalker(program, ras_capacity=capacity)
            ref_walker = _ReferenceWalker(deep_call_program(), ras_capacity=capacity)
            for _ in range(40):
                fetched = walker.next_branch()
                expected = ref_walker.next_branch()
                assert (fetched.pc, fetched.uops) == (expected.pc, expected.uops), capacity
                walker.advance(True)
                ref_walker.advance(True)
            assert walker.fetched_uops == ref_walker.fetched_uops

            executor = ArchitecturalExecutor(deep_call_program(), ras_capacity=capacity)
            ref_executor = _ReferenceExecutor(deep_call_program(), ras_capacity=capacity)
            for _ in range(40):
                got = executor.next_branch()
                expected = ref_executor.next_branch()
                assert (got.pc, got.taken, got.uops) == (
                    expected.pc, expected.taken, expected.uops
                ), capacity

    def test_tiny_window_forces_critiques(self, kernel_backend):
        """A shallow window exercises the forced-critique path."""
        program = _program("INT00", 41)
        config = replace(_CONFIG, inflight_depth=2, collect_per_site=False)
        spec = SystemSpec.hybrid("2bc-gskew", 2, "tagged-gshare", 2, future_bits=8)
        new = _simulate(program, spec.build(), config, kernel_backend)
        ref = reference_simulate(program, spec.build(), config)
        assert_bit_identical(new, ref)

    def test_zero_warmup(self, kernel_backend):
        program = _program("MM", 42)
        config = replace(_CONFIG, warmup=0)
        spec = SystemSpec.single("2bc-gskew", 2)
        new = _simulate(program, spec.build(), config, kernel_backend)
        ref = reference_simulate(program, spec.build(), config)
        assert_bit_identical(new, ref)


#: Every registered predictor kind, as literals. REP004 (``repro lint``)
#: requires each registry kind's string to appear in this file so
#: scalar/batched agreement is exercised for all of them on every run;
#: the registry-equality test below keeps this list from rotting.
_ALL_KINDS = (
    "2bc-gskew",
    "always-not-taken",
    "always-taken",
    "bimodal",
    "filtered-perceptron",
    "gas",
    "gshare",
    "local",
    "perceptron",
    "tage",
    "tagged-gshare",
    "tournament",
    "yags",
)


class TestAllRegisteredKinds:
    """Scalar/batched differential across the *entire* predictor registry.

    Dispatched kinds get a genuine SoA-vs-scalar bit-identity check;
    allowlisted kinds (``sim.batched.SCALAR_FALLBACK_KINDS``) prove the
    documented fallback produces the scalar result verbatim. Either way,
    every registered kind is pinned here — adding a predictor without
    extending this matrix is a REP004 lint error.
    """

    def test_kind_list_matches_registry(self):
        from repro.predictors.registry import registered_kinds

        assert list(_ALL_KINDS) == registered_kinds()

    def test_fallback_allowlist_is_consistent(self):
        """Allowlisted kinds are registered; dispatched kinds are not
        allowlisted (the REP004 contract, asserted at runtime too)."""
        from repro.predictors.registry import registered_kinds
        from repro.sim.batched import SCALAR_FALLBACK_KINDS

        assert SCALAR_FALLBACK_KINDS <= set(registered_kinds())

    @pytest.mark.parametrize("kind", _ALL_KINDS)
    def test_single_system_scalar_batched_identical(self, kind):
        from repro.sim.specs import PredictorSpec

        spec = SystemSpec(kind="single", prophet=PredictorSpec(kind))
        program = _program("INT00", 23)
        config = replace(_CONFIG, collect_per_site=False)
        scalar = _simulate(program, spec.build(), config, "scalar")
        batched = _simulate(program, spec.build(), config, "batched")
        if kind not in ("always-taken", "always-not-taken"):
            assert scalar.mispredicts > 0
        assert_bit_identical(batched, scalar)
