"""Concurrent-use guarantees of the on-disk :class:`ResultCache`.

The sweep-scale engine made the cache a genuinely shared resource: pool
workers write their own results as cells finish, and nothing stops two
engines (or two whole sweeps on different machines sharing a filesystem)
from racing on the same keys. The contract under race is:

* a ``get`` never returns a corrupt or partially written entry — it is
  either a full, decodable result or a miss;
* racing ``put``\\ s of the same key are atomic, last-writer-wins, and
  every writer writes the same bytes for the same key (results are
  deterministic in the spec), so *which* writer wins is unobservable.

These tests hammer one cache directory from several processes and then
verify every entry decodes to the expected result.
"""

import json
import multiprocessing

import pytest

from repro.sim import (
    ProcessPoolExecutor,
    ProgramSpec,
    ResultCache,
    SimulationConfig,
    SweepCell,
    SweepEngine,
    SystemSpec,
    run_cell,
)
from repro.sim.cache import stats_to_dict

CONFIG = SimulationConfig(n_branches=1200, warmup=240)


def make_cells():
    systems = {
        "gshare": SystemSpec.single("gshare", 2),
        "hybrid": SystemSpec.hybrid("gshare", 2, "tagged-gshare", 2, 4),
    }
    return [
        SweepCell(label, bench, spec, ProgramSpec(benchmark=bench), CONFIG)
        for bench in ("swim", "facerec")
        for label, spec in systems.items()
    ]


def _hammer(args):
    """Worker: interleave puts and gets of the same keys, count anomalies."""
    cache_dir, rounds = args
    cache = ResultCache(cache_dir)
    cells = make_cells()
    results = {cell.content_hash(): run_cell(cell) for cell in cells}
    expected = {
        key: json.dumps(stats_to_dict(result), sort_keys=True)
        for key, result in results.items()
    }
    corrupt = 0
    for _ in range(rounds):
        for key, result in results.items():
            cache.put(key, result)
            fetched = cache.get(key)
            if fetched is None:
                continue  # a miss under race is legal; corruption is not
            if json.dumps(stats_to_dict(fetched), sort_keys=True) != expected[key]:
                corrupt += 1
    return corrupt


class TestRacingWriters:
    def test_processes_racing_on_same_keys_never_corrupt(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with multiprocessing.Pool(3) as pool:
            anomalies = pool.map(_hammer, [(cache_dir, 12)] * 3)
        assert anomalies == [0, 0, 0]
        # After the dust settles every entry is whole and decodable.
        cache = ResultCache(cache_dir)
        for cell in make_cells():
            fetched = cache.get(cell.content_hash())
            assert fetched is not None
            assert fetched.branches == CONFIG.n_branches - CONFIG.warmup

    def test_two_pooled_engines_sharing_one_cache_dir(self, tmp_path):
        """Two engines' pool workers write the same keys concurrently."""
        cells = make_cells()
        reference = [run_cell(cell) for cell in cells]

        def run_engine(conn):
            with SweepEngine(
                executor=ProcessPoolExecutor(jobs=2),
                cache=ResultCache(tmp_path / "shared"),
            ) as engine:
                results = engine.run_cells(make_cells())
            conn.send([stats_to_dict(r) for r in results])
            conn.close()

        pipes = []
        processes = []
        for _ in range(2):
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(target=run_engine, args=(child_conn,))
            process.start()
            pipes.append(parent_conn)
            processes.append(process)
        payloads = [conn.recv() for conn in pipes]
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        want = [stats_to_dict(r) for r in reference]
        assert payloads[0] == want
        assert payloads[1] == want
        # The shared directory holds exactly the distinct cells, all valid.
        cache = ResultCache(tmp_path / "shared")
        assert len(cache) == len({c.content_hash() for c in cells})
        for cell in cells:
            assert cache.get(cell.content_hash()) is not None

    def test_partial_write_is_invisible(self, tmp_path):
        """A writer dying mid-put leaves no observable entry at all."""
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()

        class Boom(RuntimeError):
            pass

        # Simulate a crash inside the atomic-rename window: the temp file
        # write raises before os.replace runs.
        import repro.sim.cache as cache_module

        original_dump = cache_module.json.dump

        def exploding_dump(*args, **kwargs):
            raise Boom()

        cache_module.json.dump = exploding_dump
        try:
            with pytest.raises(Boom):
                cache.put(key, run_cell(cell))
        finally:
            cache_module.json.dump = original_dump
        assert cache.get(key) is None
        assert list(tmp_path.glob("**/*.tmp")) == []  # temp file cleaned up
