"""Concurrent-use guarantees of the shared result cache — local and served.

The sweep-scale engine made the cache a genuinely shared resource: pool
workers write their own results as cells finish, and nothing stops two
engines (or two whole sweeps on different machines sharing a filesystem)
from racing on the same keys. The sweep daemon (:mod:`repro.serve`)
widened the sharing again: a daemon serves its local cache over
``/cache/<key>``, and other daemons layer a
:class:`~repro.sim.cache.TieredBackend` on top of it. The contract under
race is the same at every layer:

* a ``get`` never returns a corrupt or partially written entry — it is
  either a full, decodable result or a miss;
* racing ``put``\\ s of the same key are atomic, last-writer-wins, and
  every writer writes the same bytes for the same key (results are
  deterministic in the spec, ``serialize_entry`` is deterministic in the
  result), so *which* writer wins is unobservable.

These tests hammer one cache directory from several processes, race two
daemons through one shared HTTP tier, and kill a daemon mid-job to prove
the resumed job reuses every already-cached cell.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import threading

import pytest

from repro.sim import (
    ProcessPoolExecutor,
    ProgramSpec,
    ResultCache,
    SimulationConfig,
    SweepCell,
    SweepEngine,
    SystemSpec,
    run_cell,
)
from repro.sim.cache import (
    HTTPBackend,
    TieredBackend,
    serialize_entry,
    stats_to_dict,
)

CONFIG = SimulationConfig(n_branches=1200, warmup=240)


def make_cells():
    systems = {
        "gshare": SystemSpec.single("gshare", 2),
        "hybrid": SystemSpec.hybrid("gshare", 2, "tagged-gshare", 2, 4),
    }
    return [
        SweepCell(label, bench, spec, ProgramSpec(benchmark=bench), CONFIG)
        for bench in ("swim", "facerec")
        for label, spec in systems.items()
    ]


def _hammer(args):
    """Worker: interleave puts and gets of the same keys, count anomalies."""
    cache_dir, rounds = args
    cache = ResultCache(cache_dir)
    cells = make_cells()
    results = {cell.content_hash(): run_cell(cell) for cell in cells}
    expected = {
        key: json.dumps(stats_to_dict(result), sort_keys=True)
        for key, result in results.items()
    }
    corrupt = 0
    for _ in range(rounds):
        for key, result in results.items():
            cache.put(key, result)
            fetched = cache.get(key)
            if fetched is None:
                continue  # a miss under race is legal; corruption is not
            if json.dumps(stats_to_dict(fetched), sort_keys=True) != expected[key]:
                corrupt += 1
    return corrupt


class TestRacingWriters:
    def test_processes_racing_on_same_keys_never_corrupt(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with multiprocessing.Pool(3) as pool:
            anomalies = pool.map(_hammer, [(cache_dir, 12)] * 3)
        assert anomalies == [0, 0, 0]
        # After the dust settles every entry is whole and decodable.
        cache = ResultCache(cache_dir)
        for cell in make_cells():
            fetched = cache.get(cell.content_hash())
            assert fetched is not None
            assert fetched.branches == CONFIG.n_branches - CONFIG.warmup

    def test_two_pooled_engines_sharing_one_cache_dir(self, tmp_path):
        """Two engines' pool workers write the same keys concurrently."""
        cells = make_cells()
        reference = [run_cell(cell) for cell in cells]

        def run_engine(conn):
            with SweepEngine(
                executor=ProcessPoolExecutor(jobs=2),
                cache=ResultCache(tmp_path / "shared"),
            ) as engine:
                results = engine.run_cells(make_cells())
            conn.send([stats_to_dict(r) for r in results])
            conn.close()

        pipes = []
        processes = []
        for _ in range(2):
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(target=run_engine, args=(child_conn,))
            process.start()
            pipes.append(parent_conn)
            processes.append(process)
        payloads = [conn.recv() for conn in pipes]
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        want = [stats_to_dict(r) for r in reference]
        assert payloads[0] == want
        assert payloads[1] == want
        # The shared directory holds exactly the distinct cells, all valid.
        cache = ResultCache(tmp_path / "shared")
        assert len(cache) == len({c.content_hash() for c in cells})
        for cell in cells:
            assert cache.get(cell.content_hash()) is not None

    def test_partial_write_is_invisible(self, tmp_path, monkeypatch):
        """A writer dying mid-put leaves no observable entry at all."""
        cache = ResultCache(tmp_path)
        cell = make_cells()[0]
        key = cell.content_hash()

        class Boom(RuntimeError):
            pass

        # Simulate a crash inside the atomic-rename window: the entry
        # bytes are fully written to the temp file, but the process dies
        # before ``os.replace`` publishes it.
        import repro.sim.cache as cache_module

        def exploding_replace(src, dst):
            raise Boom()

        monkeypatch.setattr(cache_module.os, "replace", exploding_replace)
        with pytest.raises(Boom):
            cache.put(key, run_cell(cell))
        monkeypatch.undo()
        assert cache.get(key) is None
        assert list(tmp_path.glob("**/*.tmp")) == []  # temp file cleaned up


def _job_payload():
    """The service-level spelling of :func:`make_cells`' grid."""
    return {
        "systems": {
            "gshare": {"kind": "single",
                       "prophet": {"kind": "gshare", "budget_kb": 2}},
            "hybrid": {"kind": "hybrid",
                       "prophet": {"kind": "gshare", "budget_kb": 2},
                       "critic": {"kind": "tagged-gshare", "budget_kb": 2},
                       "future_bits": 4},
        },
        "benchmarks": "swim,facerec",
        "branches": CONFIG.n_branches,
        "warmup": CONFIG.warmup,
    }


class TestDaemonCacheSharing:
    """Two daemons sharing one HTTP cache tier, and kill/resume reuse."""

    def test_tiered_daemons_over_one_http_tier_never_corrupt(self, tmp_path):
        """Daemons B and C race identical jobs through A's shared tier.

        Whatever the interleaving — B simulates and writes through, C
        hits A's tier remotely, or both simulate concurrently — every
        fetched result must be bit-identical to a local run, and every
        entry left in any tier must be whole and decodable.
        """
        from repro.serve import ServeConfig, SweepClient, start_daemon

        cells = make_cells()
        reference = {
            cell.content_hash(): stats_to_dict(run_cell(cell)) for cell in cells
        }

        hub = start_daemon(
            ServeConfig(port=0, cache_url=str(tmp_path / "hub"))
        )
        try:
            edges = [
                start_daemon(ServeConfig(
                    port=0,
                    cache_url=f"tiered:{tmp_path / f'edge{i}'}|{hub.url}",
                ))
                for i in range(2)
            ]
            try:
                docs: dict[int, dict] = {}
                errors: list[BaseException] = []

                def submit_and_wait(i: int) -> None:
                    try:
                        client = SweepClient(edges[i].url)
                        job = client.submit_payload(_job_payload())
                        docs[i] = client.wait(job, timeout=120)
                    except BaseException as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(target=submit_and_wait, args=(i,))
                    for i in range(2)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                assert not errors, errors
                # Both daemons' results are bit-identical to local runs.
                for doc in docs.values():
                    assert doc["state"] == "done"
                    by_key = {row["content_hash"]: row for row in doc["results"]}
                    for key, want in reference.items():
                        assert by_key[key]["result"]["payload"] == want
            finally:
                for edge in edges:
                    edge.stop()
        finally:
            hub.stop()
        # Every tier holds only whole, decodable entries for these keys.
        for tier in ("hub", "edge0", "edge1"):
            root = tmp_path / tier
            if not root.exists():
                continue
            cache = ResultCache(root)
            for cell in cells:
                fetched = cache.get(cell.content_hash())
                if fetched is not None:
                    assert stats_to_dict(fetched) == reference[cell.content_hash()]
        # The hub tier saw every key (at least one edge wrote through).
        hub_cache = ResultCache(tmp_path / "hub")
        for cell in cells:
            assert hub_cache.get(cell.content_hash()) is not None

    def test_http_tier_hammered_by_threads_never_partial_reads(self, tmp_path):
        """Raw /cache traffic under thread race: full bytes or a miss."""
        from repro.serve import ServeConfig, start_daemon

        cells = make_cells()
        expected = {
            cell.content_hash(): serialize_entry(
                cell.content_hash(), run_cell(cell)
            )
            for cell in cells
        }
        handle = start_daemon(ServeConfig(port=0, cache_url=str(tmp_path / "hub")))
        try:
            anomalies: list[str] = []

            def hammer() -> None:
                backend = HTTPBackend(handle.url)
                for _ in range(8):
                    for key, want in expected.items():
                        backend.put_bytes(key, want)
                        got = backend.get_bytes(key)
                        if got is not None and got != want:
                            anomalies.append(key)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert anomalies == []
        finally:
            handle.stop()

    def test_tiered_backend_write_through_and_peer_down(self, tmp_path):
        """A dead remote peer degrades a tiered cache, never fails it."""
        cells = make_cells()
        cell = cells[0]
        key = cell.content_hash()
        result = run_cell(cell)
        # Port 9 (discard) is reliably closed: every remote op errors.
        dead = TieredBackend(
            local=ResultCache(tmp_path / "local").backend,
            remote=HTTPBackend("http://127.0.0.1:9"),
        )
        cache = ResultCache(dead)
        cache.put(key, result)  # remote put fails silently; local holds it
        fetched = cache.get(key)
        assert fetched is not None
        assert stats_to_dict(fetched) == stats_to_dict(result)

    def test_killed_daemon_resumed_job_reuses_cached_cells(self, tmp_path):
        """SIGKILL a daemon mid-job; its successor resumes from the cache.

        The engine streams each cell into the cache *before* its
        progress event reaches the client, so every cell event observed
        before the kill is a cell the resumed job must not re-simulate.
        """
        from repro.serve import SweepClient

        cache_dir = str(tmp_path / "cache")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-url", cache_dir],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on http://"), banner
            url = banner.split()[-1]
            client = SweepClient(url)
            job = client.submit_payload(_job_payload())
            seen = 0
            try:
                for event in client.events(job):
                    if event.get("event") == "cell":
                        seen += 1
                        if seen >= 2:
                            break
            finally:
                proc.kill()  # SIGKILL: no drain, no cleanup
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert seen >= 2

        # A fresh daemon on the same cache dir resumes the identical job:
        # every cell the dead daemon finished is served from the cache.
        from repro.serve import ServeConfig, start_daemon

        handle = start_daemon(ServeConfig(port=0, cache_url=cache_dir))
        try:
            client = SweepClient(handle.url)
            job = client.submit_payload(_job_payload())
            doc = client.wait(job, timeout=120)
        finally:
            handle.stop()
        assert doc["state"] == "done"
        total = doc["cells_executed"] + doc["cells_from_cache"]
        assert total == len(make_cells())
        assert doc["cells_from_cache"] >= seen
        # And the resumed results are still the local-run truth.
        reference = {
            cell.content_hash(): stats_to_dict(run_cell(cell))
            for cell in make_cells()
        }
        for row in doc["results"]:
            assert row["result"]["payload"] == reference[row["content_hash"]]
