"""Config round-trips for the spec layer, and the redesign differential.

Property-style coverage of the redesigned spec API: every registered
predictor kind — at a sampled explicit geometry, at schema defaults and
at Table-3 budget shorthands — must survive
``SystemSpec.from_config(spec.to_config())`` (through real JSON text)
with equality *and* a stable content hash, in both prophet and critic
roles. Malformed configs are rejected with messages naming the valid
vocabulary. Finally, a differential grid proves the shorthand specs
build systems bit-identical to pre-redesign direct construction.
"""

import dataclasses
import json
from typing import ClassVar

import pytest

from repro.predictors import (
    BUDGETS_KB,
    GsharePredictor,
    TaggedGsharePredictor,
    TwoBcGskewPredictor,
    budgeted_kinds,
    critic_capable_kinds,
    registered_kinds,
)
from repro.core.hybrid import ProphetCriticSystem, SinglePredictorSystem
from repro.sim import (
    PredictorSpec,
    ProgramSpec,
    SimulationConfig,
    SweepCell,
    SystemSpec,
    run_sweep,
)
from repro.sim.cache import stats_to_dict
from repro.workloads.generator import WorkloadProfile

#: One non-default geometry per registered kind (the "geometry sample"
#: of the round-trip property tests).
GEOMETRY_SAMPLES = {
    "2bc-gskew": {"entries_per_table": 1024, "history_length": 9},
    "always-not-taken": {},
    "always-taken": {},
    "bimodal": {"entries": 1024},
    "filtered-perceptron": {"n_perceptrons": 73, "history_length": 13,
                            "filter_sets": 128},
    "gas": {"history_length": 6, "set_bits": 4},
    "gshare": {"entries": 4096, "history_length": 10},
    "local": {"history_entries": 256, "local_history_length": 8},
    "perceptron": {"n_perceptrons": 64, "history_length": 12},
    "tage": {"n_components": 4, "base_entries": 1024, "component_entries": 256},
    "tagged-gshare": {"sets": 256, "ways": 4, "history_length": 12},
    "tournament": {
        "component_a": {"kind": "bimodal", "params": {"entries": 512}},
        "component_b": {"kind": "gshare", "budget_kb": 2},
        "chooser_entries": 512,
    },
    "yags": {"choice_entries": 1024, "cache_entries": 256, "history_length": 8},
}


def json_round_trip(config: dict) -> dict:
    """Through real JSON text, as a config file would travel."""
    return json.loads(json.dumps(config))


def assert_spec_round_trips(spec: SystemSpec) -> None:
    restored = SystemSpec.from_config(json_round_trip(spec.to_config()))
    assert restored == spec
    assert restored.describe() == spec.describe()  # hash-stable


class TestSystemConfigRoundTrips:
    def test_samples_cover_the_whole_registry(self):
        assert sorted(GEOMETRY_SAMPLES) == registered_kinds()

    @pytest.mark.parametrize("kind", sorted(GEOMETRY_SAMPLES))
    def test_prophet_round_trip_at_sampled_geometry(self, kind):
        spec = SystemSpec(
            kind="single",
            prophet=PredictorSpec(kind, params=GEOMETRY_SAMPLES[kind] or None),
        )
        assert_spec_round_trips(spec)

    @pytest.mark.parametrize("kind", sorted(GEOMETRY_SAMPLES))
    def test_prophet_round_trip_at_schema_defaults(self, kind):
        assert_spec_round_trips(
            SystemSpec(kind="single", prophet=PredictorSpec(kind))
        )

    @pytest.mark.parametrize("kind", critic_capable_kinds())
    def test_critic_role_round_trip(self, kind):
        spec = SystemSpec(
            kind="hybrid",
            prophet=PredictorSpec("gshare", budget_kb=2),
            critic=PredictorSpec(kind, params=GEOMETRY_SAMPLES[kind] or None),
            future_bits=4,
        )
        assert_spec_round_trips(spec)
        assert isinstance(spec.build(), ProphetCriticSystem)

    @pytest.mark.parametrize("kind", budgeted_kinds())
    @pytest.mark.parametrize("budget_kb", BUDGETS_KB)
    def test_budget_shorthand_round_trip(self, kind, budget_kb):
        spec = SystemSpec.single(kind, budget_kb)
        assert_spec_round_trips(spec)
        # The shorthand survives as shorthand (minimal config form).
        assert spec.to_config()["prophet"] == {"kind": kind, "budget_kb": budget_kb}

    @pytest.mark.parametrize("kind", budgeted_kinds())
    def test_shorthand_and_explicit_params_share_a_content_hash(self, kind):
        shorthand = PredictorSpec(kind, budget_kb=8)
        explicit = PredictorSpec(
            kind, params=dataclasses.asdict(shorthand.resolved_params())
        )
        assert shorthand != explicit  # structurally distinct spellings...
        assert shorthand.describe() == explicit.describe()  # ...same identity

    def test_every_kind_is_instantiable_from_json(self):
        for kind in registered_kinds():
            config = json_round_trip(
                {"kind": "single",
                 "prophet": {"kind": kind, "params": GEOMETRY_SAMPLES[kind]}}
            )
            system = SystemSpec.from_config(config).build()
            assert isinstance(system, SinglePredictorSystem)


class TestConfigRejections:
    def test_unknown_predictor_kind(self):
        with pytest.raises(KeyError, match="registered kinds"):
            PredictorSpec("oracle")

    def test_unknown_parameter_name(self):
        with pytest.raises(ValueError, match="valid parameters"):
            PredictorSpec("gshare", params={"entires": 64})

    def test_params_and_budget_are_exclusive(self):
        with pytest.raises(ValueError, match="pick one"):
            PredictorSpec("gshare", params={"entries": 64}, budget_kb=8)

    def test_prophet_only_kind_rejected_in_critic_role(self):
        for kind in ("bimodal", "local", "tournament", "always-taken"):
            with pytest.raises(ValueError, match="critic-capable kinds"):
                SystemSpec(
                    kind="hybrid",
                    prophet=PredictorSpec("gshare", budget_kb=2),
                    critic=PredictorSpec(kind),
                    future_bits=4,
                )

    def test_single_system_rejects_hybrid_settings(self):
        # future_bits/insert_on on a single system would be silently
        # ignored; the spec (and its config round trip) must refuse them.
        with pytest.raises(ValueError, match="hybrid settings"):
            SystemSpec(
                kind="single",
                prophet=PredictorSpec("gshare", budget_kb=2),
                future_bits=8,
            )
        with pytest.raises(ValueError, match="hybrid settings"):
            SystemSpec.from_config(
                {"kind": "single", "prophet": "gshare", "future_bits": 8}
            )

    def test_tournament_nested_kinds_validate_eagerly(self):
        with pytest.raises(KeyError, match="registered kinds"):
            PredictorSpec("tournament", params={"component_a": {"kind": "doom"}})
        with pytest.raises(ValueError, match="valid parameters"):
            PredictorSpec(
                "tournament",
                params={"component_b": {"kind": "gshare",
                                        "params": {"entires": 64}}},
            )

    def test_unknown_system_config_key(self):
        with pytest.raises(ValueError, match="valid keys"):
            SystemSpec.from_config(
                {"kind": "single", "prophet": "gshare", "prophet_kb": 8}
            )

    def test_unknown_predictor_config_key(self):
        with pytest.raises(ValueError, match="valid keys"):
            PredictorSpec.from_config({"kind": "gshare", "size": 8})

    def test_future_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            SystemSpec.from_config(
                {"format": 99, "kind": "single", "prophet": "gshare"}
            )

    def test_unknown_simulation_config_key(self):
        cell_config = SweepCell(
            "label", "swim", SystemSpec.single("gshare", 2),
            ProgramSpec(benchmark="swim"),
        ).to_config()
        cell_config["config"]["branches"] = 1  # the real key is n_branches
        with pytest.raises(ValueError, match="valid keys"):
            SweepCell.from_config(cell_config)

    def test_program_config_needs_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ProgramSpec.from_config({"benchmark": "gcc", "trace": "x.trace"})


class TestProgramAndCellRoundTrips:
    def test_program_spec_is_frozen(self):
        spec = ProgramSpec(benchmark="gcc")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.benchmark = "perl"

    def test_benchmark_round_trip(self):
        spec = ProgramSpec(benchmark="gcc", seed=7)
        assert ProgramSpec.from_config(json_round_trip(spec.to_config())) == spec

    def test_profile_round_trip_restores_tuple_fields(self):
        profile = WorkloadProfile(name="custom", seed=9, loop_trips=(2, 9))
        spec = ProgramSpec(profile=profile)
        restored = ProgramSpec.from_config(json_round_trip(spec.to_config()))
        assert restored == spec
        assert restored.profile.loop_trips == (2, 9)

    def test_sweep_cell_round_trip_preserves_content_hash(self):
        cell = SweepCell(
            system_label="hybrid",
            bench_name="swim",
            system=SystemSpec.hybrid("2bc-gskew", 2, "tagged-gshare", 2, 4),
            program=ProgramSpec(benchmark="swim"),
            config=SimulationConfig(n_branches=1500, warmup=300),
        )
        restored = SweepCell.from_config(json_round_trip(cell.to_config()))
        assert restored.content_hash() == cell.content_hash()
        assert restored.system_label == cell.system_label


class TestRedesignDifferential:
    """Shorthand specs are bit-identical to pre-redesign construction.

    The pre-redesign ``SystemSpec.single``/``.hybrid`` path named
    predictors as ``(kind, budget_kb)`` pairs and built them through the
    old budget table. Here the same experiment grid runs once through
    the redesigned spec layer and once through factory closures that
    hard-code the pre-redesign Table-3 constructor calls — the results
    must agree field by field.
    """

    CONFIG = SimulationConfig(n_branches=1500, warmup=300)
    BENCHMARKS: ClassVar[dict[str, str]] = {"swim": "swim", "ammp": "ammp"}

    @staticmethod
    def _legacy_systems():
        # Table-3 geometries exactly as the pre-redesign budget.py
        # hard-coded them (gshare 2KB: 8K entries / h13; gskew 2KB:
        # 2K/table / h11; tagged-gshare 2KB: 256 sets × 6 ways, BOR 18).
        return {
            "gshare-alone": lambda: SinglePredictorSystem(
                GsharePredictor(8 * 1024, 13)
            ),
            "filtered-hybrid": lambda: ProphetCriticSystem(
                TwoBcGskewPredictor(2 * 1024, 11),
                TaggedGsharePredictor(256, 6, 18),
                future_bits=4,
            ),
        }

    @staticmethod
    def _spec_systems():
        return {
            "gshare-alone": SystemSpec.single("gshare", 2),
            "filtered-hybrid": SystemSpec.hybrid(
                "2bc-gskew", 2, "tagged-gshare", 2, 4
            ),
        }

    def test_shorthand_specs_match_pre_redesign_construction(self):
        via_specs = run_sweep(self._spec_systems(), self.BENCHMARKS, self.CONFIG)
        via_legacy = run_sweep(self._legacy_systems(), self.BENCHMARKS, self.CONFIG)
        assert set(via_specs.runs) == set(via_legacy.runs)
        for key, stats in via_specs.runs.items():
            assert stats_to_dict(stats) == stats_to_dict(via_legacy.runs[key]), key

    def test_config_file_grid_matches_shorthand_grid(self):
        configs = {
            label: json_round_trip(spec.to_config())
            for label, spec in self._spec_systems().items()
        }
        via_configs = run_sweep(
            {label: SystemSpec.from_config(c) for label, c in configs.items()},
            self.BENCHMARKS,
            self.CONFIG,
        )
        via_specs = run_sweep(self._spec_systems(), self.BENCHMARKS, self.CONFIG)
        for key, stats in via_specs.runs.items():
            assert stats_to_dict(stats) == stats_to_dict(via_configs.runs[key]), key
