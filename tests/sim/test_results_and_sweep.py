"""Tests for result rendering, metrics containers and sweeps."""

import math

import pytest

from repro.core import SinglePredictorSystem
from repro.core.critiques import CritiqueKind
from repro.predictors import BimodalPredictor, GsharePredictor
from repro.sim import RunStats, SimulationConfig, run_sweep
from repro.sim.results import format_table, render_mapping, render_series
from repro.workloads.generator import WorkloadProfile, generate_program


class TestFormatTable:
    def test_renders_rows_and_headers(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text and "30" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_basic(self):
        assert render_series("s", [1, 2], [0.5, 1.0]) == "s: 1=0.500, 2=1.000"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("s", [1], [1.0, 2.0])


class TestRenderMapping:
    def test_basic(self):
        text = render_mapping("T", {"key": 1.5, "other": "x"})
        assert "T" in text and "1.500" in text and "x" in text


class TestRunStats:
    def test_empty_stats_are_safe(self):
        stats = RunStats()
        assert stats.misp_per_kuops == 0.0
        assert stats.mispredict_rate == 0.0
        assert stats.accuracy == 1.0
        assert math.isinf(stats.uops_per_flush)
        assert stats.filtered_fraction == 0.0
        assert stats.taken_rate == 0.0

    def test_metric_formulas(self):
        stats = RunStats(branches=1000, committed_uops=13_000, mispredicts=26,
                         prophet_mispredicts=40, taken_branches=600)
        assert math.isclose(stats.misp_per_kuops, 2.0)
        assert math.isclose(stats.mispredict_rate, 0.026)
        assert math.isclose(stats.uops_per_flush, 500.0)
        assert math.isclose(stats.prophet_misp_per_kuops, 40 / 13.0)
        assert math.isclose(stats.taken_rate, 0.6)

    def test_wrong_path_uops(self):
        stats = RunStats(committed_uops=100, fetched_uops=160)
        assert stats.wrong_path_uops == 60
        stats2 = RunStats(committed_uops=100, fetched_uops=90)
        assert stats2.wrong_path_uops == 0

    def test_merge_accumulates(self):
        a = RunStats(branches=10, committed_uops=100, mispredicts=1)
        a.census.record(CritiqueKind.CORRECT_AGREE)
        b = RunStats(branches=20, committed_uops=200, mispredicts=3)
        b.census.record(CritiqueKind.CORRECT_NONE)
        a.merge(b)
        assert a.branches == 30
        assert a.mispredicts == 4
        assert a.census.total == 2

    def test_record_site(self):
        stats = RunStats()
        stats.record_site(0x100, prophet_misp=True, final_misp=False)
        stats.record_site(0x100, prophet_misp=False, final_misp=True)
        row = stats.per_site[0x100]
        assert row == [2, 1, 1, 1, 1]

    # -- regression: merge() used to drop other.per_site entirely, so
    # suite-averaged runs silently lost per-site attribution.

    def test_merge_per_site_none_none(self):
        a, b = RunStats(), RunStats()
        a.merge(b)
        assert a.per_site is None

    def test_merge_per_site_copies_from_other(self):
        a = RunStats()
        b = RunStats()
        b.record_site(0x10, prophet_misp=True, final_misp=True)
        a.merge(b)
        assert a.per_site == {0x10: [1, 1, 1, 0, 0]}
        # Rows are copied, never aliased: mutating the merged stats must
        # not corrupt the contributing run.
        a.per_site[0x10][0] += 1
        assert b.per_site[0x10][0] == 1

    def test_merge_per_site_keeps_own_when_other_none(self):
        a = RunStats()
        a.record_site(0x10, prophet_misp=False, final_misp=True)
        a.merge(RunStats())
        assert a.per_site == {0x10: [1, 0, 1, 0, 1]}

    def test_merge_per_site_sums_element_wise(self):
        a = RunStats()
        a.record_site(0x10, prophet_misp=True, final_misp=False)
        a.record_site(0x20, prophet_misp=False, final_misp=False)
        b = RunStats()
        b.record_site(0x10, prophet_misp=True, final_misp=True)
        b.record_site(0x30, prophet_misp=False, final_misp=True)
        a.merge(b)
        # Hand-summed rows: shared key 0x10 adds element-wise, disjoint
        # keys carry over verbatim.
        assert a.per_site == {
            0x10: [2, 2, 1, 1, 0],
            0x20: [1, 0, 0, 0, 0],
            0x30: [1, 0, 1, 0, 1],
        }

    # -- regression: summary() used to emit float("inf") for
    # uops_per_flush on zero-mispredict runs, which json.dump serializes
    # as the invalid token ``Infinity``.

    def test_summary_zero_mispredicts_is_strict_json(self):
        import json

        stats = RunStats(branches=100, committed_uops=1300, mispredicts=0)
        summary = stats.summary()
        assert summary["uops_per_flush"] is None
        text = json.dumps(summary, allow_nan=False)
        parsed = json.loads(
            text, parse_constant=lambda token: pytest.fail(f"non-JSON {token}")
        )
        assert parsed["uops_per_flush"] is None

    def test_summary_finite_uops_per_flush_survives(self):
        stats = RunStats(branches=100, committed_uops=1300, mispredicts=13)
        assert stats.summary()["uops_per_flush"] == 100.0


class TestRunSweep:
    def test_grid_shape_and_aggregation(self):
        def program_factory(seed):
            return lambda: generate_program(
                WorkloadProfile(name=f"s{seed}", seed=seed, static_branch_target=50)
            )

        systems = {
            "bimodal": lambda: SinglePredictorSystem(BimodalPredictor(256)),
            "gshare": lambda: SinglePredictorSystem(GsharePredictor(256, 8)),
        }
        benchmarks = {"w1": program_factory(1), "w2": program_factory(2)}
        result = run_sweep(
            systems, benchmarks, SimulationConfig(n_branches=1500, warmup=300)
        )
        assert set(result.system_labels()) == {"bimodal", "gshare"}
        assert set(result.bench_names()) == {"w1", "w2"}
        assert len(result.runs) == 4
        avg = result.average_misp_per_kuops("gshare")
        assert avg >= 0.0
        pooled = result.aggregate("gshare")
        assert pooled.branches == 2400  # two runs x 1200 measured

    def test_average_of_unknown_label_is_zero(self):
        from repro.sim.sweep import SweepResult

        assert SweepResult().average_misp_per_kuops("nope") == 0.0

    def test_get_missing_pair_raises_descriptive_keyerror(self):
        from repro.sim.sweep import SweepResult

        result = SweepResult()
        result.add("gshare", "w1", RunStats())
        result.add("bimodal", "w2", RunStats())
        with pytest.raises(KeyError) as excinfo:
            result.get("gshare", "w9")
        message = str(excinfo.value)
        assert "gshare" in message and "w9" in message
        assert "w1" in message and "w2" in message  # lists what *is* available
        assert "bimodal" in message

    def test_get_returns_existing_run(self):
        from repro.sim.sweep import SweepResult

        stats = RunStats(branches=5)
        result = SweepResult()
        result.add("gshare", "w1", stats)
        assert result.get("gshare", "w1") is stats
