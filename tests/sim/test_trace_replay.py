"""Differential tests: recorded-then-replayed runs equal live runs exactly,
and trace-backed specs flow through the sweep engine and result cache."""

import shutil

import pytest

from repro.core.hybrid import ProphetCriticSystem, SinglePredictorSystem
from repro.predictors.budget import make_critic, make_prophet
from repro.sim.cache import ResultCache
from repro.sim.driver import SimulationConfig, oracle_replay, simulate
from repro.sim.execution import ProcessPoolExecutor, SerialExecutor, SweepEngine
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec
from repro.workloads.generator import WorkloadProfile
from repro.workloads.suites import TRACES, benchmark, register_trace, register_trace_suite
from repro.workloads.trace import BranchTrace, capture_trace, record_trace, replay_program
from repro.workloads.trace_io import TraceReader

CONFIG = SimulationConfig(n_branches=3_000, warmup=600)

STAT_FIELDS = (
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)


def assert_stats_identical(live, replayed):
    for field in STAT_FIELDS:
        assert getattr(live, field) == getattr(replayed, field), field
    assert live.census.as_dict() == replayed.census.as_dict()


def hybrid_system():
    return ProphetCriticSystem(
        make_prophet("2bc-gskew", 8), make_critic("tagged-gshare", 8), future_bits=8
    )


@pytest.fixture(autouse=True)
def clean_trace_registry():
    yield
    TRACES.clear()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One shared recording of two benchmarks (records > n_branches)."""
    root = tmp_path_factory.mktemp("traces")
    paths = {}
    for name in ("swim", "flash"):
        paths[name] = root / f"{name}.trace"
        record_trace(benchmark(name), CONFIG.n_branches, paths[name])
    return paths


class TestExactReplay:
    """The acceptance criterion: replay == live run, bit for bit."""

    @pytest.mark.parametrize("name", ["swim", "flash"])
    def test_hybrid_replay_is_bit_identical(self, recorded, name):
        live = simulate(benchmark(name), hybrid_system(), CONFIG)
        replayed = simulate(replay_program(recorded[name]), hybrid_system(), CONFIG)
        assert_stats_identical(live, replayed)

    def test_baseline_replay_is_bit_identical(self, recorded):
        live = simulate(
            benchmark("swim"), SinglePredictorSystem(make_prophet("2bc-gskew", 16)), CONFIG
        )
        replayed = simulate(
            replay_program(recorded["swim"]),
            SinglePredictorSystem(make_prophet("2bc-gskew", 16)),
            CONFIG,
        )
        assert_stats_identical(live, replayed)

    def test_replayed_program_is_reusable(self, recorded):
        """program.reset() rewinds the stream: two runs, same numbers."""
        program = replay_program(recorded["swim"])
        first = simulate(program, hybrid_system(), CONFIG)
        second = simulate(program, hybrid_system(), CONFIG)
        assert_stats_identical(first, second)

    def test_custom_profile_replay(self, tmp_path):
        """Replay fidelity holds for arbitrary generated workloads too."""
        profile = WorkloadProfile(name="custom", seed=99, static_branch_target=120)
        spec = ProgramSpec(profile=profile)
        path = tmp_path / "custom.trace"
        record_trace(spec.build(), CONFIG.n_branches, path)
        live = simulate(spec.build(), hybrid_system(), CONFIG)
        replayed = simulate(replay_program(path), hybrid_system(), CONFIG)
        assert_stats_identical(live, replayed)


class TestTraceSpecs:
    """Trace-backed ProgramSpec: hashing, engine, cache, pickling."""

    def cell(self, path, label="hybrid"):
        return SweepCell(
            system_label=label,
            bench_name="swim",
            system=SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, 8),
            program=ProgramSpec.from_trace(path),
            config=CONFIG,
        )

    def test_exactly_one_source_enforced(self, recorded):
        with pytest.raises(ValueError, match="exactly one"):
            ProgramSpec()
        with pytest.raises(ValueError, match="exactly one"):
            ProgramSpec(benchmark="swim", trace=str(recorded["swim"]))

    def test_seed_override_rejected(self, recorded):
        with pytest.raises(ValueError, match="seed override"):
            ProgramSpec(trace=str(recorded["swim"]), seed=5)

    def test_no_profile_for_traces(self, recorded):
        with pytest.raises(ValueError, match="no.*profile"):
            ProgramSpec.from_trace(recorded["swim"]).resolved_profile()

    def test_name_comes_from_header(self, recorded):
        assert ProgramSpec.from_trace(recorded["swim"]).name == "swim"

    def test_hash_is_content_addressed_not_path_addressed(self, recorded, tmp_path):
        copy = tmp_path / "renamed-elsewhere.trace"
        shutil.copy(recorded["swim"], copy)
        assert (
            self.cell(recorded["swim"]).content_hash() == self.cell(copy).content_hash()
        )

    def test_different_traces_hash_differently(self, recorded):
        assert (
            self.cell(recorded["swim"]).content_hash()
            != self.cell(recorded["flash"]).content_hash()
        )

    def test_serial_pool_and_cache_agree(self, recorded, tmp_path):
        """The PR-1 invariant extended to trace-backed cells."""
        cells = [self.cell(recorded["swim"]), self.cell(recorded["flash"])]
        serial = SweepEngine(executor=SerialExecutor()).run_cells(cells)
        pooled = SweepEngine(executor=ProcessPoolExecutor(2)).run_cells(cells)
        cold_engine = SweepEngine(cache=ResultCache(tmp_path / "cache"))
        cold = cold_engine.run_cells(cells)
        # A second engine with a fresh ResultCache over the same directory
        # models a separate process reusing the cache.
        warm_engine = SweepEngine(cache=ResultCache(tmp_path / "cache"))
        warm = warm_engine.run_cells(cells)
        assert cold_engine.cache.misses == 2 and cold_engine.cache.hits == 0
        assert warm_engine.cache.hits == 2 and warm_engine.cache.misses == 0
        for results in (pooled, cold, warm):
            for reference, candidate in zip(serial, results):
                assert_stats_identical(reference, candidate)

    def test_cached_replay_equals_live_run(self, recorded, tmp_path):
        """record -> replay (via engine + cache) == live generator run."""
        live = simulate(benchmark("swim"), hybrid_system(), CONFIG)
        engine = SweepEngine(cache=ResultCache(tmp_path / "cache"))
        (cold,) = engine.run_cells([self.cell(recorded["swim"])])
        (warm,) = engine.run_cells([self.cell(recorded["swim"])])
        assert_stats_identical(live, cold)
        assert_stats_identical(live, warm)


class TestRegisteredTraces:
    def test_registered_name_flows_through_benchmark_and_specs(self, recorded):
        name = register_trace(recorded["swim"], name="swim-trace")
        assert name == "swim-trace"
        spec = ProgramSpec(benchmark=name)
        assert spec.trace is not None  # resolved eagerly for picklability
        assert spec.benchmark is None  # exactly-one-source invariant holds
        live = simulate(benchmark("swim"), hybrid_system(), CONFIG)
        replayed = simulate(benchmark(name), hybrid_system(), CONFIG)
        assert_stats_identical(live, replayed)
        assert_stats_identical(live, simulate(spec.build(), hybrid_system(), CONFIG))

    def test_collision_with_generated_benchmark_rejected(self, recorded):
        with pytest.raises(ValueError, match="collides"):
            register_trace(recorded["swim"], name="gcc")

    def test_rebinding_a_registered_name_rejected(self, recorded):
        register_trace(recorded["swim"], name="shared")
        register_trace(recorded["swim"], name="shared")  # same path: idempotent
        with pytest.raises(ValueError, match="already registered"):
            register_trace(recorded["flash"], name="shared")

    def test_registered_spec_reconstructs_from_its_own_fields(self, recorded):
        """Registry resolution leaves exactly one source populated."""
        import dataclasses

        register_trace(recorded["swim"], name="swim-trace")
        spec = ProgramSpec(benchmark="swim-trace")
        assert spec.benchmark is None and spec.trace is not None
        clone = dataclasses.replace(spec)
        assert clone.describe() == spec.describe()

    def test_register_suite_directory(self, recorded):
        names = register_trace_suite(recorded["swim"].parent)
        assert sorted(names) == ["trace:flash", "trace:swim"]
        live = simulate(benchmark("flash"), hybrid_system(), CONFIG)
        assert_stats_identical(live, simulate(benchmark("trace:flash"), hybrid_system(), CONFIG))

    def test_register_suite_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            register_trace_suite(tmp_path)


class TestOracleReplay:
    def test_streaming_matches_in_memory(self, recorded):
        def predictors():
            return dict(
                prophet=make_prophet("2bc-gskew", 8),
                critic=make_critic("tagged-gshare", 8),
                future_bits=8,
                warmup=CONFIG.warmup,
            )

        in_memory = oracle_replay(
            BranchTrace.from_file(recorded["swim"]), **predictors()
        )
        with TraceReader(recorded["swim"]) as reader:
            streamed = oracle_replay(reader.records(), **predictors())
        assert_stats_identical(in_memory, streamed)

    def test_oracle_beats_honest_on_its_own_terms(self, recorded):
        """The §6 point: oracle future bits inflate accuracy."""
        honest = simulate(replay_program(recorded["swim"]), hybrid_system(), CONFIG)
        with TraceReader(recorded["swim"]) as reader:
            oracle = oracle_replay(
                reader.records(),
                prophet=make_prophet("2bc-gskew", 8),
                critic=make_critic("tagged-gshare", 8),
                future_bits=8,
                warmup=CONFIG.warmup,
            )
        assert oracle.mispredict_rate <= honest.mispredict_rate * 1.05

    def test_capture_matches_recorded_file(self, recorded):
        captured = capture_trace(benchmark("swim"), CONFIG.n_branches)
        on_disk = BranchTrace.from_file(recorded["swim"])
        assert list(captured) == list(on_disk)
