"""Regression tests for simulation determinism.

The execution engine's caching and parallelism are only sound because a
cell's result is a pure function of its spec. These tests pin that
property at the `simulate` level: the same seed and config must produce
identical ``RunStats`` across independent runs, across a ``reset()`` of
the system, and regardless of unrelated simulations in between.
"""

from repro.experiments.base import hybrid_system, single_system
from repro.sim import RunStats, SimulationConfig, simulate
from repro.workloads.suites import benchmark

CONFIG = SimulationConfig(n_branches=2000, warmup=400)

_FIELDS = (
    "benchmark",
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)


def assert_identical(a: RunStats, b: RunStats) -> None:
    for field in _FIELDS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.census.counts == b.census.counts


class TestSimulateDeterminism:
    def test_two_fresh_runs_are_identical(self):
        first = simulate(
            benchmark("flash"), hybrid_system("gshare", 2, "tagged-gshare", 2, 4)(), CONFIG
        )
        second = simulate(
            benchmark("flash"), hybrid_system("gshare", 2, "tagged-gshare", 2, 4)(), CONFIG
        )
        assert first.mispredicts > 0  # a trivial run would prove nothing
        assert_identical(first, second)

    def test_rerun_after_system_reset_is_identical(self):
        program = benchmark("swim")
        system = hybrid_system("2bc-gskew", 2, "tagged-gshare", 2, 4)()
        first = simulate(program, system, CONFIG)
        system.reset()
        second = simulate(program, system, CONFIG)  # simulate() resets the program
        assert_identical(first, second)

    def test_single_system_reset_is_identical(self):
        program = benchmark("ammp")
        system = single_system("gshare", 2)()
        first = simulate(program, system, CONFIG)
        system.reset()
        second = simulate(program, system, CONFIG)
        assert_identical(first, second)

    def test_interleaved_unrelated_run_does_not_perturb(self):
        """No hidden global state couples independent simulations."""
        first = simulate(
            benchmark("flash"), hybrid_system("gshare", 2, "tagged-gshare", 2, 4)(), CONFIG
        )
        simulate(benchmark("tpcc"), single_system("perceptron", 2)(), CONFIG)
        second = simulate(
            benchmark("flash"), hybrid_system("gshare", 2, "tagged-gshare", 2, 4)(), CONFIG
        )
        assert_identical(first, second)
