"""Tests for the functional accuracy driver."""

import pytest

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.predictors import BimodalPredictor, GsharePredictor, TaggedGsharePredictor
from repro.sim import SimulationConfig, simulate
from repro.workloads.behaviors import BiasedRandomBehavior, PatternBehavior
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.program import BasicBlock, BlockKind, Program


def pattern_program(pattern="TTN") -> Program:
    blocks = [
        BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1, fallthrough=2,
                   behavior=PatternBehavior(pattern)),
        BasicBlock(1, 0x1010, 3, BlockKind.JUMP, taken_target=0),
        BasicBlock(2, 0x1020, 5, BlockKind.JUMP, taken_target=0),
    ]
    return Program(name="pattern", blocks=blocks, entry=0)


def small_config(**kw) -> SimulationConfig:
    defaults = dict(n_branches=3000, warmup=500)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestDriverBasics:
    def test_learns_pattern_to_high_accuracy(self):
        stats = simulate(
            pattern_program(), SinglePredictorSystem(GsharePredictor(256, 8)), small_config()
        )
        assert stats.accuracy > 0.95
        assert stats.branches == 2500

    def test_uop_accounting_consistent(self):
        stats = simulate(
            pattern_program(), SinglePredictorSystem(GsharePredictor(256, 8)), small_config()
        )
        # Every committed branch contributes its block's uops.
        assert stats.committed_uops >= stats.branches * 4
        assert stats.fetched_uops >= stats.committed_uops * 0.9

    def test_warmup_must_leave_window(self):
        with pytest.raises(ValueError):
            simulate(
                pattern_program(),
                SinglePredictorSystem(BimodalPredictor(64)),
                SimulationConfig(n_branches=100, warmup=100),
            )

    def test_deterministic(self):
        def run():
            return simulate(
                pattern_program(),
                SinglePredictorSystem(GsharePredictor(256, 8)),
                small_config(),
            )

        a, b = run(), run()
        assert a.mispredicts == b.mispredicts
        assert a.committed_uops == b.committed_uops

    def test_btb_disabled_has_no_static_branches(self):
        stats = simulate(
            pattern_program(),
            SinglePredictorSystem(GsharePredictor(256, 8)),
            small_config(use_btb=False),
        )
        assert stats.static_branches == 0

    def test_btb_cold_misses_counted(self):
        program = generate_program(WorkloadProfile(name="t", seed=3, static_branch_target=80))
        stats = simulate(
            program,
            SinglePredictorSystem(GsharePredictor(256, 8)),
            SimulationConfig(n_branches=2000, warmup=10),
        )
        # Early cold misses land inside the (tiny) measurement window.
        assert stats.static_branches >= 0  # accounted, never negative

    def test_per_site_collection(self):
        stats = simulate(
            pattern_program(),
            SinglePredictorSystem(GsharePredictor(256, 8)),
            small_config(collect_per_site=True),
        )
        assert stats.per_site is not None
        assert 0x1000 in stats.per_site
        row = stats.per_site[0x1000]
        assert row[0] == stats.branches

    def test_mispredict_rate_of_random_branch_matches_bias(self):
        blocks = [
            BasicBlock(0, 0x1000, 4, BlockKind.COND, taken_target=1, fallthrough=1,
                       behavior=BiasedRandomBehavior(0.75)),
            BasicBlock(1, 0x1010, 3, BlockKind.JUMP, taken_target=0),
        ]
        program = Program(name="rand", blocks=blocks, entry=0, seed=5)
        stats = simulate(
            program, SinglePredictorSystem(BimodalPredictor(64)), small_config(n_branches=8000)
        )
        # A 2-bit counter on a Bernoulli(0.75) stream cannot beat the 25%
        # Bayes rate and pays extra for counter flip-flop (~31% in the
        # steady state of the Markov chain) — bound it in [Bayes, ~flip-flop].
        assert 0.24 <= stats.mispredict_rate <= 0.36


class TestDriverWithHybrid:
    def make_hybrid(self, fb=4):
        return ProphetCriticSystem(
            GsharePredictor(1024, 10),
            TaggedGsharePredictor(sets=64, ways=4, history_length=12),
            future_bits=fb,
        )

    @pytest.mark.parametrize("fb", [0, 1, 4, 8])
    def test_hybrid_runs_at_any_future_bits(self, fb):
        stats = simulate(pattern_program(), self.make_hybrid(fb), small_config())
        assert stats.branches == 2500
        assert stats.census.total == stats.branches - stats.static_branches

    def test_hybrid_not_worse_on_easy_program(self):
        base = simulate(
            pattern_program(), SinglePredictorSystem(GsharePredictor(1024, 10)), small_config()
        )
        hyb = simulate(pattern_program(), self.make_hybrid(), small_config())
        assert hyb.mispredicts <= base.mispredicts + 25

    def test_census_totals_match_branches(self):
        stats = simulate(pattern_program(), self.make_hybrid(), small_config())
        assert stats.census.total == stats.branches - stats.static_branches

    def test_inflight_depth_respected_for_future_bits(self):
        # A depth smaller than future_bits must still work (auto-raised).
        stats = simulate(
            pattern_program(), self.make_hybrid(8), small_config(inflight_depth=2)
        )
        assert stats.branches == 2500

    def test_forced_critiques_are_rare(self):
        stats = simulate(pattern_program(), self.make_hybrid(8), small_config())
        assert stats.forced_critiques <= stats.branches * 0.01


class TestGeneratedProgramIntegrity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_desync_on_generated_programs(self, seed):
        """The walker/executor cross-check runs inside simulate(); any
        divergence raises SimulationDesyncError."""
        program = generate_program(
            WorkloadProfile(name="t", seed=seed, static_branch_target=120)
        )
        stats = simulate(
            program,
            ProphetCriticSystem(
                GsharePredictor(1024, 10),
                TaggedGsharePredictor(sets=64, ways=4),
                future_bits=4,
            ),
            SimulationConfig(n_branches=4000, warmup=400),
        )
        assert stats.branches == 3600

    def test_metrics_summary_keys(self):
        program = pattern_program()
        stats = simulate(
            program, SinglePredictorSystem(BimodalPredictor(64)), small_config()
        )
        summary = stats.summary()
        for key in ("misp_per_kuops", "mispredict_pct", "uops_per_flush"):
            assert key in summary
