"""The batched structure-of-arrays backend: identity, memoization, helpers.

The batched kernel (:mod:`repro.sim.batched`) is admissible only because
it is bit-for-bit identical to the scalar loop and to the frozen
reference kernel — the full seeds × suites × systems matrix runs in
``tests/sim/test_differential_kernel.py`` under both backends via the
``kernel_backend`` fixture. This module covers what that matrix does
not:

* deep windows (long aligned run-ahead, the batched fast path);
* the memoized architectural trace: repeat runs, prefix reuse, and
  scalar runs staying oblivious to the cache;
* the vectorized batch-predict helpers against each predictor's scalar
  ``predict_packed``, and the tagged-gshare hash against ``_hash_pair``;
* backend dispatch: unknown names, the scalar fallback for unsupported
  predictors, and the numpy-missing gate;
* the hash-stability constraint: ``backend`` is an execution detail and
  must not perturb ``SweepCell.content_hash`` (pinned to its PR-5
  value).
"""

from __future__ import annotations

import zlib
from dataclasses import replace

import pytest

from reference_kernel import reference_simulate
from repro.sim import batched
from repro.sim.driver import SimulationConfig, simulate
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec
from repro.workloads.generator import generate_program
from repro.workloads.suites import BENCHMARKS

np = pytest.importorskip("numpy")

_FIELDS = (
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)

_CONFIG = SimulationConfig(
    n_branches=1500, warmup=300, inflight_depth=12, collect_per_site=True
)


def _program(benchmark: str, seed: int):
    profile = replace(
        BENCHMARKS[benchmark],
        name=f"batched-{benchmark}-{seed}",
        seed=seed,
        static_branch_target=150,
        n_functions=5,
    )
    return generate_program(profile)


def _assert_identical(a, b):
    for field in _FIELDS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.census.counts == b.census.counts
    assert a.per_site == b.per_site


def _single_builders():
    """One builder per batched single-predictor kind (gas and bimodal
    have no budget presets, so they are built from explicit params)."""
    from repro.core import SinglePredictorSystem
    from repro.predictors import BimodalPredictor, GAsPredictor

    return {
        "2bc-gskew": lambda: SystemSpec.single("2bc-gskew", 2).build(),
        "gshare": lambda: SystemSpec.single("gshare", 2).build(),
        "gas": lambda: SinglePredictorSystem(GAsPredictor(10, 4)),
        "bimodal": lambda: SinglePredictorSystem(BimodalPredictor(4096)),
    }


class TestDeepWindow:
    """A 64-deep window maximizes aligned run-ahead — the batched kernel's
    burst fast path — and the post-trace speculative tail."""

    @pytest.mark.parametrize("use_btb", [True, False])
    @pytest.mark.parametrize("kind", ["2bc-gskew", "gshare", "gas", "bimodal"])
    def test_single_predictors(self, kind, use_btb):
        program = _program("gcc", 5)
        build = _single_builders()[kind]
        config = replace(
            _CONFIG, inflight_depth=64, use_btb=use_btb,
            btb_entries=256, btb_ways=4,
        )
        scalar = simulate(program, build(), replace(config, backend="scalar"))
        batch = simulate(program, build(), replace(config, backend="batched"))
        ref = reference_simulate(program, build(), config)
        _assert_identical(batch, scalar)
        _assert_identical(batch, ref)

    @pytest.mark.parametrize("future_bits", [0, 8])
    def test_hybrid(self, future_bits):
        program = _program("tpcc", 6)
        spec = SystemSpec.hybrid(
            "2bc-gskew", 2, "tagged-gshare", 2, future_bits=future_bits
        )
        config = replace(_CONFIG, inflight_depth=64)
        scalar = simulate(program, spec.build(), replace(config, backend="scalar"))
        batch = simulate(program, spec.build(), replace(config, backend="batched"))
        ref = reference_simulate(program, spec.build(), config)
        _assert_identical(batch, scalar)
        _assert_identical(batch, ref)


class TestTraceMemoization:
    """The architectural trace is predictor-independent and prefix-stable,
    so it is cached on the program object across batched runs."""

    def test_repeat_runs_bit_identical(self):
        program = _program("gcc", 11)
        spec = SystemSpec.single("2bc-gskew", 2)
        config = replace(_CONFIG, backend="batched")
        first = simulate(program, spec.build(), config)
        assert getattr(program, "_trace_cache", None) is not None
        second = simulate(program, spec.build(), config)
        _assert_identical(second, first)

    def test_cache_shared_across_systems(self):
        """One walk serves every system swept over the same program."""
        program = _program("flash", 12)
        config = replace(_CONFIG, backend="batched")
        simulate(program, SystemSpec.single("gshare", 2).build(), config)
        cache = program._trace_cache
        stats = simulate(program, SystemSpec.single("2bc-gskew", 2).build(), config)
        assert program._trace_cache is cache  # not rebuilt
        fresh = simulate(
            _program("flash", 12),
            SystemSpec.single("2bc-gskew", 2).build(),
            replace(config, backend="scalar"),
        )
        _assert_identical(stats, fresh)

    def test_prefix_reuse(self):
        """A shorter run is served as a slice of the longest cached trace."""
        program = _program("swim", 13)
        spec = SystemSpec.single("gshare", 2)
        long_cfg = replace(_CONFIG, backend="batched")
        short_cfg = replace(
            _CONFIG, n_branches=500, warmup=100, backend="batched"
        )
        simulate(program, spec.build(), long_cfg)
        assert program._trace_cache[0] == _CONFIG.n_branches
        short = simulate(program, spec.build(), short_cfg)
        assert program._trace_cache[0] == _CONFIG.n_branches  # kept, not shrunk
        fresh = simulate(
            _program("swim", 13), spec.build(),
            replace(short_cfg, backend="scalar"),
        )
        _assert_identical(short, fresh)

    def test_scalar_runs_unaffected_by_cache(self):
        program = _program("tpcc", 14)
        spec = SystemSpec.single("2bc-gskew", 2)
        simulate(program, spec.build(), replace(_CONFIG, backend="batched"))
        after = simulate(program, spec.build(), replace(_CONFIG, backend="scalar"))
        fresh = simulate(
            _program("tpcc", 14), spec.build(), replace(_CONFIG, backend="scalar")
        )
        _assert_identical(after, fresh)


class TestTraceColumnStore:
    """The persistent trace-column cache: codec round trips, prefix-stable
    keep-longest semantics, cross-backend round trips, and the kernel
    hook that lets a fresh process skip the architectural CFG walk."""

    def _cols(self, rng, n):
        """Random but shape-correct trace columns (property-test input)."""
        t_pc = [0x40000000 + 4 * int(rng.integers(0, 1 << 20)) for _ in range(n)]
        t_tk = [bool(rng.integers(0, 2)) for _ in range(n)]
        t_uops = [int(rng.integers(1, 16)) for _ in range(n)]
        t_tt = [int(rng.integers(0, 1 << 16)) for _ in range(n)]
        t_ft = [int(rng.integers(0, 1 << 16)) for _ in range(n)]
        t_snap = [
            tuple(int(rng.integers(0, 200)) for _ in range(int(rng.integers(0, 8))))
            for _ in range(n)
        ]
        return (t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)

    def test_codec_round_trips(self):
        from repro.sim.cache import decode_trace_columns, encode_trace_columns

        rng = np.random.default_rng(7)
        for n in (0, 1, 17, 300):
            cols = self._cols(rng, n)
            stored_n, out = decode_trace_columns(encode_trace_columns(n, cols))
            assert stored_n == n
            assert out == cols

    def test_codec_rejects_garbage(self):
        from repro.sim.cache import decode_trace_columns, encode_trace_columns

        with pytest.raises(ValueError):
            decode_trace_columns(b"not a trace entry")
        blob = encode_trace_columns(3, self._cols(np.random.default_rng(8), 3))
        with pytest.raises(ValueError):
            decode_trace_columns(blob[: len(blob) - 2])  # truncated

    def test_prefix_reuse_and_keep_longest(self, tmp_path):
        from repro.sim.cache import LocalDirBackend, TraceColumnStore

        rng = np.random.default_rng(9)
        store = TraceColumnStore(LocalDirBackend(tmp_path))
        long_cols = self._cols(rng, 50)
        assert store.get("bk", 10) is None  # cold
        store.put("bk", 50, long_cols)
        hit = store.get("bk", 10)  # served from the longer entry
        assert hit is not None and hit[0] == 50 and hit[1] == long_cols
        store.put("bk", 5, self._cols(rng, 5))  # shorter: must not clobber
        assert store.get("bk", 50) == (50, long_cols)
        assert store.get("bk", 51) is None  # longer than stored: miss
        assert store.misses == 2 and store.hits == 2

    def test_cross_backend_round_trip(self, tmp_path):
        """An entry written through one backend reads back identically
        through another over the same bytes — including the tiered
        backend's local-over-remote promotion path."""
        from repro.sim.cache import LocalDirBackend, TieredBackend, TraceColumnStore

        rng = np.random.default_rng(10)
        cols = self._cols(rng, 40)
        remote = LocalDirBackend(tmp_path / "remote")
        TraceColumnStore(remote).put("bk", 40, cols)
        tiered = TraceColumnStore(
            TieredBackend(LocalDirBackend(tmp_path / "local"), remote)
        )
        assert tiered.get("bk", 40) == (40, cols)  # read-through
        assert tiered.get("bk", 12)[1] == cols  # now from the local tier
        fresh = TraceColumnStore(LocalDirBackend(tmp_path / "local"))
        assert fresh.get("bk", 40) == (40, cols)  # promotion persisted

    def test_kernel_skips_walk_on_store_hit(self, tmp_path):
        """A fresh program object (new process, worker restart) with the
        same build key is served from the store — and the result is
        bit-identical to a run that walked the CFG itself."""
        from repro.sim.cache import LocalDirBackend, TraceColumnStore

        store = TraceColumnStore(LocalDirBackend(tmp_path))
        batched.set_trace_store(store)
        try:
            spec = SystemSpec.single("2bc-gskew", 2)
            config = replace(_CONFIG, backend="batched")
            warm_program = _program("gcc", 31)
            warm_program._build_key = "bk-gcc-31"
            warm = simulate(warm_program, spec.build(), config)
            assert store.misses >= 1 and store.hits == 0
            cold_program = _program("gcc", 31)  # no memoized state at all
            cold_program._build_key = "bk-gcc-31"
            served = simulate(cold_program, spec.build(), config)
            assert store.hits >= 1
            _assert_identical(served, warm)
        finally:
            batched.set_trace_store(None)

    def test_unkeyed_programs_never_touch_the_store(self, tmp_path):
        """Ad-hoc programs (no ``_build_key`` stamp) stay out of the
        persistent tier entirely."""
        from repro.sim.cache import LocalDirBackend, TraceColumnStore

        store = TraceColumnStore(LocalDirBackend(tmp_path))
        batched.set_trace_store(store)
        try:
            spec = SystemSpec.single("gshare", 2)
            simulate(
                _program("swim", 32), spec.build(),
                replace(_CONFIG, backend="batched"),
            )
            assert store.hits == 0 and store.misses == 0
        finally:
            batched.set_trace_store(None)


class TestPickleHygiene:
    """Memoized numpy tables and replay state must not ride along when
    predictors or programs cross the pool's pickle boundary."""

    def test_predictor_drops_np_table_caches(self):
        import pickle

        from repro.predictors.budget import make_prophet

        predictor = make_prophet("2bc-gskew", 2)
        batched._np_table(predictor, "_h_np", predictor._h_table)
        assert hasattr(predictor, "_h_np")
        clone = pickle.loads(pickle.dumps(predictor))
        assert not hasattr(clone, "_h_np")
        # and the cache rebuilds transparently on next batched use
        rebuilt = batched._np_table(clone, "_h_np", clone._h_table)
        assert rebuilt.tolist() == list(clone._h_table)

    def test_program_drops_replay_state_keeps_build_key(self):
        import pickle

        program = _program("gcc", 33)
        program._build_key = "bk-gcc-33"
        spec = SystemSpec.single("2bc-gskew", 2)
        simulate(program, spec.build(), replace(_CONFIG, backend="batched"))
        assert getattr(program, "_trace_cache", None) is not None
        assert getattr(program, "_replay_ctx", None) is not None
        clone = pickle.loads(pickle.dumps(program))
        assert not hasattr(clone, "_trace_cache")
        assert not hasattr(clone, "_replay_ctx")
        assert clone._build_key == "bk-gcc-33"
        # the clone still simulates identically (state rebuilds lazily)
        fresh = simulate(
            clone, spec.build(), replace(_CONFIG, backend="batched")
        )
        scalar = simulate(
            _program("gcc", 33), spec.build(), replace(_CONFIG, backend="scalar")
        )
        _assert_identical(fresh, scalar)


def _random_inputs(rng, count=256):
    pcs = np.asarray(
        [0x40000000 + 4 * int(rng.integers(0, 1 << 20)) for _ in range(count)],
        dtype=np.int64,
    )
    hists = np.asarray(
        [int(rng.integers(0, 1 << 24)) for _ in range(count)], dtype=np.int64
    )
    return pcs, hists


class TestBatchHelpers:
    """Vectorized predict/hash helpers vs the scalar methods they mirror."""

    @pytest.mark.parametrize("kind", ["2bc-gskew", "gshare", "gas", "bimodal"])
    def test_batch_predict_matches_scalar(self, kind):
        predictor = _single_builders()[kind]().predictor
        fn = batched._BATCH_PREDICT[batched._PROPHET_KINDS[type(predictor)]]
        rng = np.random.default_rng(zlib.crc32(kind.encode()))
        pcs, hists = _random_inputs(rng)
        preds, states = fn(predictor, pcs, hists)
        for i in range(len(pcs)):
            pred, state = predictor.predict_packed(int(pcs[i]), int(hists[i]))
            assert bool(preds[i]) == pred, i
            assert states[i] == state, i

    def test_batch_hash_matches_scalar(self):
        from repro.predictors.budget import make_critic

        critic = make_critic("tagged-gshare", 2)
        rng = np.random.default_rng(99)
        pcs, hists = _random_inputs(rng)
        sets, tags = batched.batch_hash_tagged_gshare(critic, pcs, hists)
        for i in range(len(pcs)):
            set_index, tag = critic._hash_pair(int(pcs[i]), int(hists[i]))
            assert (sets[i], tags[i]) == (set_index, tag), i


class TestBackendDispatch:
    def test_unknown_backend_rejected(self):
        program = _program("gcc", 21)
        spec = SystemSpec.single("gshare", 2)
        with pytest.raises(ValueError, match="backend"):
            simulate(program, spec.build(), replace(_CONFIG, backend="vector"))

    def test_unsupported_predictor_falls_back_to_scalar(self):
        """tage has no batched path: simulate_batched declines, the driver
        runs the scalar loop, and results match scalar exactly."""
        program = _program("gcc", 22)
        spec = SystemSpec.single("tage", 2)
        assert batched.simulate_batched(program, spec.build(), _CONFIG) is None
        batch = simulate(program, spec.build(), replace(_CONFIG, backend="batched"))
        fresh = simulate(
            _program("gcc", 22), spec.build(), replace(_CONFIG, backend="scalar")
        )
        _assert_identical(batch, fresh)

    def test_numpy_gate_falls_back(self, monkeypatch):
        """Without numpy the batched backend degrades to scalar, silently
        and bit-identically."""
        program = _program("swim", 23)
        spec = SystemSpec.single("2bc-gskew", 2)
        monkeypatch.setattr(batched, "np", None)
        batch = simulate(program, spec.build(), replace(_CONFIG, backend="batched"))
        fresh = simulate(
            _program("swim", 23), spec.build(), replace(_CONFIG, backend="scalar")
        )
        _assert_identical(batch, fresh)


class TestContentHashStability:
    """``backend`` is an execution detail: it must not change result
    identity, and pre-existing scalar hashes must survive the field's
    introduction (the PR-3/PR-4 cache-invalidation mistake, not again)."""

    #: content_hash of the canonical cell below, computed at PR 5 —
    #: before SimulationConfig grew the ``backend`` field.
    _PR5_HASH = "4fe51eab9d29759c5c0bc9eb9f8f36a54c5b7d9e5a8893688d9258fe407c3bff"

    def _cell(self, warmup=2000, backend="scalar"):
        return SweepCell(
            system_label="baseline",
            bench_name="gcc",
            system=SystemSpec.single("2bc-gskew", 16),
            program=ProgramSpec(benchmark="gcc"),
            config=SimulationConfig(
                n_branches=20000, warmup=warmup, backend=backend
            ),
        )

    def test_default_backend_hash_pinned_to_pr5(self):
        assert self._cell().content_hash() == self._PR5_HASH

    def test_backend_excluded_from_hash(self):
        assert self._cell(backend="batched").content_hash() == self._PR5_HASH

    def test_other_config_fields_still_hash(self):
        assert self._cell(warmup=2001).content_hash() != self._PR5_HASH
