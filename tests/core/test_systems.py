"""Tests for the prediction systems (single and prophet/critic)."""

import pytest

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.core.critiques import CritiqueKind
from repro.predictors import GsharePredictor, PerceptronPredictor, TaggedGsharePredictor


def make_hybrid(future_bits=4, critic=None):
    prophet = GsharePredictor(1024, 10)
    critic = critic or TaggedGsharePredictor(sets=64, ways=4, history_length=12)
    return ProphetCriticSystem(prophet, critic, future_bits=future_bits)


class TestSinglePredictorSystem:
    def test_speculative_bhr_update(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        handle = system.predict(0x4000)
        assert system.bhr.bit(0) == int(handle.prophet_pred)

    def test_critique_is_identity(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        handle = system.predict(0x4000)
        final = system.critique(handle)
        assert final == handle.prophet_pred
        assert handle.critiqued

    def test_recover_restores_and_inserts_actual(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        handle = system.predict(0x4000)
        system.predict(0x4004)
        system.recover(handle, taken=not handle.prophet_pred)
        expected = ((handle.bhr_before << 1) | int(not handle.prophet_pred)) & 0xFF
        assert system.bhr.value == expected

    def test_resolve_trains_predictor(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        handle = system.predict(0x4000)
        system.critique(handle)
        system.resolve(handle, taken=True)
        assert system.predictor.stats.predictions == 1

    def test_static_handles_do_not_train(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        handle = system.predict_static(0x4000)
        system.critique(handle)
        system.resolve(handle, taken=True)
        assert system.predictor.stats.predictions == 0

    def test_redirect_forbidden(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        handle = system.predict(0x4000)
        with pytest.raises(RuntimeError):
            system.apply_redirect(handle, True)

    def test_reset(self):
        system = SinglePredictorSystem(GsharePredictor(256, 8))
        system.predict(0x4000)
        system.reset()
        assert system.bhr.value == 0


class TestProphetCriticSystem:
    def test_prediction_enters_both_registers(self):
        system = make_hybrid()
        handle = system.predict(0x4000)
        assert system.bhr.bit(0) == int(handle.prophet_pred)
        assert system.bor.bit(0) == int(handle.prophet_pred)

    def test_bor_never_sees_critic_output(self):
        """§3.2: critic predictions are not inserted into the BOR."""
        system = make_hybrid(future_bits=1)
        handle = system.predict(0x4000)
        bor_after_predict = system.bor.value
        system.critique(handle)
        assert system.bor.value == bor_after_predict

    def test_critique_uses_future_bits(self):
        system = make_hybrid(future_bits=3)
        handle = system.predict(0x4000)
        system.predict(0x4010)
        system.predict(0x4020)
        system.critique(handle)
        assert handle.bor_at_critique == system.bor.value

    def test_zero_future_bits_uses_pre_insert_bor(self):
        """fb=0 reproduces conventional-hybrid information timing."""
        system = make_hybrid(future_bits=0)
        handle = system.predict(0x4000)
        system.critique(handle)
        assert handle.bor_at_critique == handle.bor_before

    def test_filter_miss_agrees_implicitly(self):
        system = make_hybrid(future_bits=1)
        handle = system.predict(0x4000)
        final = system.critique(handle)
        assert not handle.critic_hit
        assert final == handle.prophet_pred

    def test_redirect_repairs_registers(self):
        system = make_hybrid(future_bits=1)
        handle = system.predict(0x4000)
        system.predict(0x4010)
        system.apply_redirect(handle, final=not handle.prophet_pred)
        width_mask = (1 << system.bhr.width) - 1
        expected = ((handle.bhr_before << 1) | int(not handle.prophet_pred)) & width_mask
        assert system.bhr.value == expected

    def test_recover_inserts_actual(self):
        system = make_hybrid(future_bits=1)
        handle = system.predict(0x4000)
        system.recover(handle, taken=True)
        assert system.bor.bit(0) == 1

    def test_resolving_uncritiqued_handle_raises(self):
        system = make_hybrid()
        handle = system.predict(0x4000)
        with pytest.raises(RuntimeError):
            system.resolve(handle, taken=True)

    def test_critic_trained_with_captured_bor(self):
        """§3.3: training must reuse the wrong-path BOR from critique time."""
        system = make_hybrid(future_bits=2)
        handle = system.predict(0x4000)
        system.predict(0x4010)
        system.critique(handle)
        captured = handle.bor_at_critique
        # Mispredict: registers repaired, BOR moves on...
        system.recover(handle, taken=not handle.prophet_pred)
        system.predict(0x4020)
        # ...but training still uses the captured value.
        system.resolve(handle, taken=not handle.prophet_pred)
        critic = system.critic
        result = critic.lookup(0x4000, captured)
        assert result.hit  # insert-on-mispredict used the captured context

    def test_unfiltered_critic_always_has_opinion(self):
        critic = PerceptronPredictor(32, 12)
        system = ProphetCriticSystem(GsharePredictor(256, 8), critic, future_bits=1)
        handle = system.predict(0x4000)
        system.critique(handle)
        assert handle.critic_hit
        assert handle.critic_pred is not None

    def test_insert_on_policies(self):
        assert make_hybrid().insert_on == "final"
        with pytest.raises(ValueError):
            ProphetCriticSystem(
                GsharePredictor(256, 8),
                TaggedGsharePredictor(sets=16, ways=2),
                insert_on="sometimes",
            )

    def test_negative_future_bits_rejected(self):
        with pytest.raises(ValueError):
            make_hybrid(future_bits=-1)

    def test_storage_is_sum(self):
        system = make_hybrid()
        assert system.storage_bits() == (
            system.prophet.storage_bits() + system.critic.storage_bits()
        )

    def test_critique_kind_classification(self):
        system = make_hybrid(future_bits=1)
        handle = system.predict(0x4000)
        system.critique(handle)
        kind = handle.critique_kind(taken=handle.prophet_pred)
        assert kind in (CritiqueKind.CORRECT_NONE, CritiqueKind.CORRECT_AGREE)

    def test_reset_clears_everything(self):
        system = make_hybrid(future_bits=1)
        handle = system.predict(0x4000)
        system.critique(handle)
        system.resolve(handle, taken=not handle.prophet_pred)
        system.reset()
        assert system.bor.value == 0
        assert not system.critic.lookup(0x4000, 0).hit
