"""Property-based checkpoint/restore tests (seeded stdlib ``random``).

The whole simulator rests on one invariant: speculative history state is
always exactly the fold of the *surviving* path. Any interleaving of
predict / critique / redirect / recover must leave the BHR and BOR equal
to what replaying just the surviving insertions from scratch would
produce. These tests drive randomised interleavings against simple
reference models (plain Python bit lists) and check the invariant after
every step — the same style of repair sequence the driver performs, but
over a much wilder schedule than any real program induces.
"""

import random

import pytest

from repro.core.history import HistoryRegister
from repro.core.hybrid import ProphetCriticSystem
from repro.predictors.budget import make_critic, make_prophet

N_SEEDS = 12
STEPS = 400


def fold(bits, width: int) -> int:
    """Replay a list of inserted bits (oldest first) into an integer."""
    value = 0
    for bit in bits:
        value = ((value << 1) | int(bit)) & ((1 << width) - 1)
    return value


class TestHistoryRegisterProperties:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_random_interleavings_match_replay(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 48)
        register = HistoryRegister(width)
        model: list[int] = []
        checkpoints: list[tuple[int, list[int]]] = []
        for _ in range(STEPS):
            op = rng.random()
            if op < 0.55:
                bit = rng.random() < 0.5
                register.insert(bit)
                model.append(int(bit))
            elif op < 0.70:
                count = rng.randint(0, 8)
                bits = rng.getrandbits(count) if count else 0
                register.insert_bits(bits, count)
                model.extend((bits >> i) & 1 for i in reversed(range(count)))
            elif op < 0.85 or not checkpoints:
                checkpoints.append((register.checkpoint(), list(model)))
            else:
                value, surviving = checkpoints[rng.randrange(len(checkpoints))]
                register.restore(value)
                model = list(surviving)
            assert register.value == fold(model, width)

    @pytest.mark.parametrize("seed", range(4))
    def test_bit_accessor_matches_model(self, seed):
        rng = random.Random(1000 + seed)
        width = rng.randint(2, 24)
        register = HistoryRegister(width)
        model: list[int] = []
        for _ in range(64):
            bit = rng.random() < 0.5
            register.insert(bit)
            model.append(int(bit))
            recent_first = list(reversed(model))[:width]
            for position, expected in enumerate(recent_first):
                assert register.bit(position) == expected


class TestProphetCriticCheckpointProperties:
    """Random driver-like schedules of predict/critique/redirect/recover.

    The reference model tracks, per register, the list of surviving
    speculative insertions; a redirect or recovery truncates the model to
    the branch's insertion point and appends the corrective bit —
    exactly the paper's checkpoint-repair semantics (§3.2, §3.3).
    """

    def _build_system(self, rng: random.Random) -> ProphetCriticSystem:
        prophet_kind = rng.choice(("gshare", "2bc-gskew", "perceptron"))
        critic_kind = rng.choice(("tagged-gshare", "gshare"))
        return ProphetCriticSystem(
            make_prophet(prophet_kind, 2),
            make_critic(critic_kind, 2),
            future_bits=rng.choice((0, 1, 4, 8)),
        )

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_registers_equal_replay_of_surviving_path(self, seed):
        rng = random.Random(seed)
        system = self._build_system(rng)
        bhr_model: list[int] = []
        bor_model: list[int] = []
        # In-flight branches, oldest first, with their insertion points.
        inflight: list[tuple[object, int]] = []

        def check() -> None:
            assert system.bhr.value == fold(bhr_model, system.bhr.width)
            assert system.bor.value == fold(bor_model, system.bor.width)

        for _ in range(STEPS):
            op = rng.random()
            if op < 0.45 or not inflight:
                pc = 0x400000 + rng.randrange(48) * 8
                handle = system.predict(pc)
                inflight.append((handle, len(bhr_model)))
                bhr_model.append(int(handle.prophet_pred))
                bor_model.append(int(handle.prophet_pred))
            elif op < 0.75:
                # Critique the oldest uncritiqued branch, in order.
                index = next(
                    (i for i, (h, _) in enumerate(inflight) if not h.critiqued),
                    None,
                )
                if index is None:
                    continue
                handle, position = inflight[index]
                final = system.critique(handle)
                if final != handle.prophet_pred:
                    # Critic override: squash the younger tail and repair.
                    del inflight[index + 1:]
                    system.apply_redirect(handle, final)
                    del bhr_model[position:]
                    del bor_model[position:]
                    bhr_model.append(int(final))
                    bor_model.append(int(final))
            else:
                # Resolve the head once critiqued (program order).
                if not inflight or not inflight[0][0].critiqued:
                    continue
                handle, position = inflight.pop(0)
                taken = rng.random() < 0.5
                system.resolve(handle, taken)
                if handle.final_pred != taken:
                    system.recover(handle, taken)
                    inflight.clear()
                    del bhr_model[position:]
                    del bor_model[position:]
                    bhr_model.append(int(taken))
                    bor_model.append(int(taken))
            check()

    @pytest.mark.parametrize("seed", range(6))
    def test_full_squash_returns_to_checkpoint(self, seed):
        """recover() after a burst of predictions restores the pre-burst
        registers exactly (plus the corrective outcome bit)."""
        rng = random.Random(5000 + seed)
        system = self._build_system(rng)
        # Warm the registers with some committed history.
        for _ in range(rng.randint(0, 40)):
            handle = system.predict(0x400000 + rng.randrange(16) * 8)
            system.critique(handle)
        bhr_before = system.bhr.value
        bor_before = system.bor.value
        first = system.predict(0x400800)
        for _ in range(rng.randint(0, 24)):
            system.predict(0x400000 + rng.randrange(16) * 8)
        taken = not first.prophet_pred  # force a mispredict
        system.critique(first)
        system.recover(first, taken)
        expected_bhr = ((bhr_before << 1) | int(taken)) & ((1 << system.bhr.width) - 1)
        expected_bor = ((bor_before << 1) | int(taken)) & ((1 << system.bor.width) - 1)
        assert system.bhr.value == expected_bhr
        assert system.bor.value == expected_bor
