"""Tests for history registers and the critique taxonomy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.critiques import CritiqueCensus, CritiqueKind
from repro.core.history import HistoryRegister


class TestHistoryRegister:
    def test_insert_shifts_newest_to_bit0(self):
        reg = HistoryRegister(4)
        reg.insert(True)
        reg.insert(False)
        reg.insert(True)
        assert reg.value == 0b101
        assert reg.bit(0) == 1
        assert reg.bit(1) == 0

    def test_width_truncates(self):
        reg = HistoryRegister(3)
        for _ in range(10):
            reg.insert(True)
        assert reg.value == 0b111

    def test_checkpoint_restore(self):
        reg = HistoryRegister(8)
        reg.insert(True)
        ckpt = reg.checkpoint()
        reg.insert(False)
        reg.insert(False)
        reg.restore(ckpt)
        assert reg.value == ckpt

    def test_insert_bits(self):
        reg = HistoryRegister(8)
        reg.insert_bits(0b1101, 4)
        assert reg.value == 0b1101

    def test_insert_bits_zero_count(self):
        reg = HistoryRegister(8, initial=0b11)
        reg.insert_bits(0b1, 0)
        assert reg.value == 0b11

    def test_insert_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            HistoryRegister(8).insert_bits(0, -1)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            HistoryRegister(0)

    def test_clear(self):
        reg = HistoryRegister(8, initial=0xFF)
        reg.clear()
        assert reg.value == 0

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_checkpoint_equals_value_history(self, bits):
        """Restoring any checkpoint replays exactly that point in time."""
        reg = HistoryRegister(16)
        checkpoints = []
        for bit in bits:
            checkpoints.append(reg.checkpoint())
            reg.insert(bit)
        replay = HistoryRegister(16)
        for i, bit in enumerate(bits):
            assert replay.value == checkpoints[i]
            replay.insert(bit)

    @given(st.integers(min_value=1, max_value=64), st.lists(st.booleans(), max_size=100))
    def test_value_always_fits_width(self, width, bits):
        reg = HistoryRegister(width)
        for bit in bits:
            reg.insert(bit)
            assert reg.value < (1 << width)


class TestCritiqueKind:
    def test_classification_matrix(self):
        C = CritiqueKind
        assert C.classify(True, True, True) is C.CORRECT_AGREE
        assert C.classify(True, True, False) is C.CORRECT_DISAGREE
        assert C.classify(False, True, True) is C.INCORRECT_AGREE
        assert C.classify(False, True, False) is C.INCORRECT_DISAGREE
        assert C.classify(True, False, True) is C.CORRECT_NONE
        assert C.classify(False, False, False) is C.INCORRECT_NONE


class TestCritiqueCensus:
    def test_record_and_totals(self):
        census = CritiqueCensus()
        census.record(CritiqueKind.CORRECT_AGREE)
        census.record(CritiqueKind.CORRECT_NONE)
        census.record(CritiqueKind.INCORRECT_DISAGREE)
        assert census.total == 3
        assert census.none_total == 1
        assert census.explicit_total == 2

    def test_net_gain(self):
        census = CritiqueCensus()
        census.record(CritiqueKind.INCORRECT_DISAGREE)
        census.record(CritiqueKind.INCORRECT_DISAGREE)
        census.record(CritiqueKind.CORRECT_DISAGREE)
        assert census.overrides_won() == 2
        assert census.overrides_lost() == 1
        assert census.net_gain() == 1

    def test_fraction(self):
        census = CritiqueCensus()
        census.record(CritiqueKind.CORRECT_AGREE)
        census.record(CritiqueKind.CORRECT_NONE)
        assert census.fraction(CritiqueKind.CORRECT_NONE) == 0.5
        assert CritiqueCensus().fraction(CritiqueKind.CORRECT_NONE) == 0.0

    def test_merge(self):
        a = CritiqueCensus()
        a.record(CritiqueKind.CORRECT_AGREE)
        b = CritiqueCensus()
        b.record(CritiqueKind.CORRECT_AGREE)
        b.record(CritiqueKind.INCORRECT_NONE)
        a.merge(b)
        assert a.counts[CritiqueKind.CORRECT_AGREE] == 2
        assert a.total == 3

    def test_as_dict(self):
        census = CritiqueCensus()
        census.record(CritiqueKind.CORRECT_AGREE)
        snapshot = census.as_dict()
        assert snapshot["correct_agree"] == 1
        assert len(snapshot) == 6
