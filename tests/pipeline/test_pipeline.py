"""Tests for the Table-2 machine config, caches and timing model."""

import pytest

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.pipeline import CacheModel, MemoryModel, TABLE2_MACHINE, TimedMachine
from repro.pipeline.uarch import CacheConfig
from repro.predictors import BimodalPredictor, GsharePredictor, TaggedGsharePredictor
from repro.workloads.behaviors import PatternBehavior
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.program import BasicBlock, BlockKind, Program


class TestMachineConfig:
    def test_table2_values(self):
        m = TABLE2_MACHINE
        assert m.frequency_ghz == 3.8
        assert m.fetch_width_uops == 6
        assert m.mispredict_penalty_cycles == 30
        assert m.btb_entries == 4096 and m.btb_ways == 4
        assert m.ftq_entries == 32
        assert m.instruction_window_uops == 2048
        assert m.scheduling_window == {"int": 256, "mem": 128, "fp": 384}
        assert m.load_buffer_uops == 768 and m.store_buffer_uops == 512
        assert m.icache.size_kb == 64 and m.icache.ways == 8
        assert m.l1d.size_kb == 32 and m.l1d.hit_cycles == 3
        assert m.l2.size_kb == 2048 and m.l2.hit_cycles == 16

    def test_memory_latency_cycles(self):
        # 100ns at 3.8GHz = 380 cycles.
        assert TABLE2_MACHINE.memory_latency_cycles == 380


class TestCacheModel:
    def test_miss_then_hit(self):
        cache = CacheModel(CacheConfig("t", 4, 2, 64, 1))
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.miss_rate == 0.5

    def test_same_line_hits(self):
        cache = CacheModel(CacheConfig("t", 4, 2, 64, 1))
        cache.access(0x1000)
        assert cache.access(0x1004)  # same 64-byte line

    def test_lru_eviction(self):
        # 4KB, 2-way, 64B lines -> 32 sets; lines mapping to one set
        # differ by 32*64 = 2048 bytes.
        cache = CacheModel(CacheConfig("t", 4, 2, 64, 1))
        for i in range(3):
            cache.access(0x1000 + i * 2048)
        assert not cache.access(0x1000)  # evicted

    def test_reset(self):
        cache = CacheModel(CacheConfig("t", 4, 2, 64, 1))
        cache.access(0x1000)
        cache.reset()
        assert cache.accesses == 0
        assert not cache.access(0x1000)


class TestMemoryModel:
    def test_deterministic(self):
        a = MemoryModel(TABLE2_MACHINE)
        b = MemoryModel(TABLE2_MACHINE)
        stalls_a = [a.stall_cycles(i, 10) for i in range(100)]
        stalls_b = [b.stall_cycles(i, 10) for i in range(100)]
        assert stalls_a == stalls_b

    def test_zero_rates_zero_stall(self):
        model = MemoryModel(TABLE2_MACHINE, l1_miss_per_uop=0.0, l2_miss_per_uop=0.0)
        assert all(model.stall_cycles(i, 10) == 0.0 for i in range(50))

    def test_expected_stall_scales_with_rate(self):
        low = MemoryModel(TABLE2_MACHINE, l1_miss_per_uop=0.001, l2_miss_per_uop=0.0)
        high = MemoryModel(TABLE2_MACHINE, l1_miss_per_uop=0.1, l2_miss_per_uop=0.0)
        total_low = sum(low.stall_cycles(i, 10) for i in range(500))
        total_high = sum(high.stall_cycles(i, 10) for i in range(500))
        assert total_high > total_low * 5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            MemoryModel(TABLE2_MACHINE, l1_miss_per_uop=2.0)
        with pytest.raises(ValueError):
            MemoryModel(TABLE2_MACHINE, mlp=0.0)


def easy_program() -> Program:
    blocks = [
        BasicBlock(0, 0x1000, 8, BlockKind.COND, taken_target=1, fallthrough=1,
                   behavior=PatternBehavior("T")),
        BasicBlock(1, 0x1010, 8, BlockKind.JUMP, taken_target=0),
    ]
    return Program(name="easy", blocks=blocks, entry=0)


class TestTimedMachine:
    def test_upc_bounded_by_width(self):
        machine = TimedMachine(easy_program(), SinglePredictorSystem(BimodalPredictor(64)))
        result = machine.run(2000, warmup=200)
        assert 0.0 < result.upc <= TABLE2_MACHINE.issue_width_uops

    def test_perfectly_predicted_program_has_few_flushes(self):
        machine = TimedMachine(easy_program(), SinglePredictorSystem(BimodalPredictor(64)))
        result = machine.run(2000, warmup=200)
        assert result.mispredicts < 10

    def test_mispredicts_cost_upc(self):
        """A program the predictor cannot learn must run slower than one
        it can."""
        hard_blocks = [
            BasicBlock(0, 0x1000, 8, BlockKind.COND, taken_target=1, fallthrough=1,
                       behavior=PatternBehavior("TN")),
            BasicBlock(1, 0x1010, 8, BlockKind.JUMP, taken_target=0),
        ]
        # Bimodal cannot learn an alternating pattern.
        hard = Program(name="hard", blocks=hard_blocks, entry=0)
        fast = TimedMachine(easy_program(), SinglePredictorSystem(BimodalPredictor(64))).run(
            2000, warmup=200
        )
        slow = TimedMachine(hard, SinglePredictorSystem(BimodalPredictor(64))).run(
            2000, warmup=200
        )
        assert slow.mispredicts > fast.mispredicts * 5
        assert slow.upc < fast.upc

    def test_hybrid_runs_through_timing_model(self):
        program = generate_program(WorkloadProfile(name="t", seed=6, static_branch_target=80))
        system = ProphetCriticSystem(
            GsharePredictor(1024, 10),
            TaggedGsharePredictor(sets=64, ways=4),
            future_bits=4,
        )
        result = TimedMachine(program, system).run(3000, warmup=300)
        assert result.branches == 2700
        assert result.fetched_uops >= result.committed_uops * 0.5
        assert result.cycles > 0

    def test_wrong_path_fraction_in_range(self):
        program = generate_program(WorkloadProfile(name="t", seed=6, static_branch_target=80))
        result = TimedMachine(program, SinglePredictorSystem(GsharePredictor(1024, 10))).run(
            3000, warmup=300
        )
        assert 0.0 <= result.wrong_path_fetch_fraction < 1.0

    def test_uops_per_flush(self):
        program = generate_program(WorkloadProfile(name="t", seed=6, static_branch_target=80))
        result = TimedMachine(program, SinglePredictorSystem(GsharePredictor(1024, 10))).run(
            3000, warmup=300
        )
        if result.mispredicts:
            assert result.uops_per_flush == result.committed_uops / result.mispredicts
