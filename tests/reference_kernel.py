"""Frozen reference implementation of the simulation kernel.

This module is a **verbatim behavioural copy** of the pre-optimization
kernel (`sim/driver.simulate` plus the engine pieces it drives) as it
stood before the hot-path overhaul: block-by-block CFG traversal, a
fresh ``FetchedBranch``/snapshot/handle allocation per dynamic branch,
closure-based driver phases. It exists so the optimized kernel can be
proven **bit-for-bit identical** by differential tests — any change to
`RunStats` (census, per-site attribution and ``fetched_uops`` included)
between this and `repro.sim.driver.simulate` is a regression, never a
tolerance question.

Two deliberate properties:

* It is self-contained at the engine layer: it carries its own copies of
  the walker, executor, return-address stack and BTB, so optimizing (or
  breaking) the production engine can never silently change the
  reference.
* It shares the *model* layer (``Program``, behaviours, predictors,
  prediction systems, ``RunStats``) with production code, because those
  define the semantics both kernels must implement — a divergence there
  is exactly what the differential test should surface.

The only intentional difference from the historical kernel is the
``warmup_fetched`` capture: the boundary is recorded when ``resolved``
crosses ``config.warmup`` (the semantics both kernels now implement)
rather than on the most recent fetch before it. In every reachable
interleaving the two formulations agree — ``fetched_uops`` only changes
on a fetch, and every fetch below the warmup threshold refreshed the old
capture — but the crossing formulation states the intent directly and is
what the optimized kernel implements.

Do not "improve" this file alongside kernel optimizations. It changes
only when the *semantics* of the simulation change on purpose, in which
case the differential test pins the new semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.hybrid import InflightBranch, PredictionSystem
from repro.sim.driver import SimulationConfig, SimulationDesyncError
from repro.sim.metrics import RunStats
from repro.workloads.program import BlockKind, Program


# ---------------------------------------------------------------------------
# Return address stack (frozen copy of engine/ras.py)
# ---------------------------------------------------------------------------


class _ReferenceRas:
    """Bounded stack of return targets; overflow drops the oldest entry."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._stack: list[int] = []

    def push(self, block_id: int) -> None:
        if len(self._stack) >= self.capacity:
            self._stack.pop(0)
        self._stack.append(block_id)

    def pop(self) -> int | None:
        if not self._stack:
            return None
        return self._stack.pop()

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._stack)

    def restore(self, snapshot: tuple[int, ...]) -> None:
        self._stack = list(snapshot)


# ---------------------------------------------------------------------------
# Speculative walker (frozen copy of engine/frontend.py)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _ReferenceSnapshot:
    block_id: int
    ras: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class _ReferenceFetched:
    pc: int
    block_id: int
    uops: int
    taken_target: int
    fallthrough: int


class _ReferenceWalker:
    """Prediction-driven CFG traverser, one block per iteration."""

    def __init__(self, program: Program, ras_capacity: int = 64) -> None:
        self.program = program
        self._block = program.block(program.entry)
        self._ras = _ReferenceRas(ras_capacity)
        self.fetched_uops = 0
        self._at_branch = False

    def next_branch(self) -> _ReferenceFetched:
        if self._at_branch:
            raise RuntimeError("already positioned at a branch; call advance() first")
        uops = 0
        while True:
            block = self._block
            uops += block.uops
            self.fetched_uops += block.uops
            if block.kind is BlockKind.COND:
                self._at_branch = True
                return _ReferenceFetched(
                    pc=block.pc,
                    block_id=block.block_id,
                    uops=uops,
                    taken_target=block.taken_target,
                    fallthrough=block.fallthrough,
                )
            if block.kind is BlockKind.JUMP:
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.CALL:
                self._ras.push(block.fallthrough)
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.RETURN:
                target = self._ras.pop()
                if target is None:
                    target = self.program.entry
                self._block = self.program.block(target)

    def advance(self, taken: bool) -> None:
        if not self._at_branch:
            raise RuntimeError("not positioned at a branch; call next_branch() first")
        block = self._block
        target = block.taken_target if taken else block.fallthrough
        self._block = self.program.block(target)
        self._at_branch = False

    def snapshot(self) -> _ReferenceSnapshot:
        if not self._at_branch:
            raise RuntimeError("snapshots are taken at conditional branches")
        return _ReferenceSnapshot(block_id=self._block.block_id, ras=self._ras.snapshot())

    def restore(self, snap: _ReferenceSnapshot) -> None:
        self._block = self.program.block(snap.block_id)
        self._ras.restore(snap.ras)
        self._at_branch = True


# ---------------------------------------------------------------------------
# Architectural executor (frozen copy of engine/executor.py)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _ReferenceResolved:
    pc: int
    taken: bool
    block_id: int
    uops: int
    next_block: int


class _ReferenceExecutor:
    """Resolves the program's branch stream in committed order."""

    def __init__(self, program: Program, ras_capacity: int = 64) -> None:
        self.program = program
        self.ctx = program.make_context()
        self._block = program.block(program.entry)
        self._ras = _ReferenceRas(ras_capacity)
        self.committed_uops = 0
        self.resolved_branches = 0

    def next_branch(self) -> _ReferenceResolved:
        uops = 0
        while True:
            block = self._block
            self.ctx.record_block(block.block_id)
            uops += block.uops
            self.committed_uops += block.uops
            if block.kind is BlockKind.COND:
                taken = bool(block.behavior.resolve(block.pc, self.ctx))
                self.ctx.record_outcome(block.pc, taken)
                target = block.taken_target if taken else block.fallthrough
                self._block = self.program.block(target)
                self.resolved_branches += 1
                return _ReferenceResolved(
                    pc=block.pc,
                    taken=taken,
                    block_id=block.block_id,
                    uops=uops,
                    next_block=target,
                )
            if block.kind is BlockKind.JUMP:
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.CALL:
                self._ras.push(block.fallthrough)
                self.ctx.push_caller(block.block_id)
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.RETURN:
                target = self._ras.pop()
                self.ctx.pop_caller()
                if target is None:
                    target = self.program.entry
                self._block = self.program.block(target)


# ---------------------------------------------------------------------------
# Branch target buffer (frozen copy of engine/btb.py, stats dropped)
# ---------------------------------------------------------------------------


class _ReferenceBtb:
    """Set-associative tag store, LRU, commit-time allocation."""

    def __init__(self, entries: int = 4096, ways: int = 4) -> None:
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self._set_bits = self.sets.bit_length() - 1
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]

    def _index_tag(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word & ((1 << self._set_bits) - 1), word >> self._set_bits

    def lookup(self, pc: int) -> bool:
        index, tag = self._index_tag(pc)
        entry_list = self._sets[index]
        if tag in entry_list:
            entry_list.remove(tag)
            entry_list.append(tag)
            return True
        return False

    def allocate(self, pc: int) -> None:
        index, tag = self._index_tag(pc)
        entry_list = self._sets[index]
        if tag in entry_list:
            entry_list.remove(tag)
        elif len(entry_list) >= self.ways:
            entry_list.pop(0)
        entry_list.append(tag)


# ---------------------------------------------------------------------------
# The reference driver loop (frozen copy of sim/driver.simulate)
# ---------------------------------------------------------------------------


def reference_simulate(
    program: Program,
    system: PredictionSystem,
    config: SimulationConfig | None = None,
) -> RunStats:
    """Run ``system`` over ``program`` with the frozen reference kernel."""
    config = config or SimulationConfig()
    if config.warmup >= config.n_branches:
        raise ValueError("warmup must leave a measurement window")

    program.reset()
    executor = _ReferenceExecutor(program)
    walker = _ReferenceWalker(program)
    btb = _ReferenceBtb(config.btb_entries, config.btb_ways) if config.use_btb else None

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    pending: deque[InflightBranch] = deque()
    critiqued_count = 0  # pending[:critiqued_count] are critiqued (in order)
    next_seq = 0         # BOR-insertion sequence number
    required_bits = max(system.future_bits, 0)
    depth = config.effective_depth(required_bits)
    hard_cap = depth + 8
    resolved = 0
    warmup_fetched = 0

    def gathered(handle: InflightBranch) -> int:
        return next_seq - handle.seq

    def fetch_one() -> None:
        nonlocal next_seq
        fetched = walker.next_branch()
        snap = walker.snapshot()
        known = btb.lookup(fetched.pc) if btb is not None else True
        if known:
            handle = system.predict(fetched.pc)
            handle.seq = next_seq
            next_seq += 1  # one BOR bit inserted
        else:
            handle = system.predict_static(fetched.pc)
            handle.seq = next_seq  # contributes no BOR bit: no increment
        handle.walker_snapshot = snap
        pending.append(handle)
        walker.advance(handle.prophet_pred)

    def critique_next() -> None:
        nonlocal critiqued_count, next_seq
        handle = pending[critiqued_count]
        final = system.critique(handle)
        critiqued_count += 1
        if handle.is_static:
            return
        if final != handle.prophet_pred:
            while len(pending) > critiqued_count:
                pending.pop()
            system.apply_redirect(handle, final)
            walker.restore(handle.walker_snapshot)
            walker.advance(final)
            next_seq = handle.seq + 1
            if resolved >= config.warmup:
                stats.critic_redirects += 1

    def resolve_head() -> None:
        nonlocal critiqued_count, next_seq, resolved, warmup_fetched
        head = pending.popleft()
        critiqued_count -= 1
        actual = executor.next_branch()
        if actual.pc != head.pc:
            raise SimulationDesyncError(
                f"committed branch {actual.pc:#x} but front end fetched {head.pc:#x} "
                f"(branch #{resolved})"
            )
        measuring = resolved >= config.warmup
        if measuring:
            stats.branches += 1
            stats.committed_uops += actual.uops
            stats.taken_branches += int(actual.taken)
            if head.is_static:
                stats.static_branches += 1
                if actual.taken:  # implicit not-taken was wrong
                    stats.mispredicts += 1
                    stats.prophet_mispredicts += 1
            else:
                stats.census.record(head.critique_kind(actual.taken))
                prophet_misp = head.prophet_pred != actual.taken
                final_misp = head.final_pred != actual.taken
                if prophet_misp:
                    stats.prophet_mispredicts += 1
                if final_misp:
                    stats.mispredicts += 1
                if config.collect_per_site:
                    stats.record_site(head.pc, prophet_misp, final_misp)
        system.resolve(head, actual.taken)
        if btb is not None and head.is_static:
            btb.allocate(head.pc)
        if head.final_pred != actual.taken or (head.is_static and actual.taken):
            system.recover(head, actual.taken)
            walker.restore(head.walker_snapshot)
            walker.advance(actual.taken)
            pending.clear()
            critiqued_count = 0
            next_seq = head.seq + 1
        resolved += 1
        if resolved == config.warmup:
            # Warmup boundary: everything fetched up to this commit is
            # excluded from the measured fetch-traffic figure.
            warmup_fetched = walker.fetched_uops

    while resolved < config.n_branches:
        # 1) Critique in order as soon as the future bits are available.
        if critiqued_count < len(pending):
            handle = pending[critiqued_count]
            needed = 0 if handle.is_static else required_bits
            if gathered(handle) >= needed:
                critique_next()
                continue
        # 2) Resolve once the head is critiqued and the window is deep
        #    enough (committing earlier would under-model update delay).
        if pending and pending[0].critiqued and len(pending) > depth:
            resolve_head()
            continue
        # 3) Otherwise keep fetching.
        if len(pending) < hard_cap:
            fetch_one()
            continue
        # 4) Fetch window exhausted before the future bits arrived (can
        #    happen when BTB-miss branches occupy slots): critique with
        #    the bits available, as the paper's implementation does (§5).
        if critiqued_count < len(pending):
            if resolved >= config.warmup:
                stats.forced_critiques += 1
            critique_next()
            continue
        # Everything critiqued but window shallow — resolve anyway.
        resolve_head()

    stats.fetched_uops = max(0, walker.fetched_uops - warmup_fetched)
    return stats
