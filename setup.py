"""Setup shim for environments where editable installs need setup.py.

All metadata lives in pyproject.toml; this file only enables the legacy
`pip install -e .` code path on offline machines without the `wheel`
package.
"""

from setuptools import setup

setup()
